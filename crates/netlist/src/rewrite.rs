//! Gate-level cleanup passes: constant propagation, buffer/double-inverter
//! sweeping and dead-logic removal.
//!
//! [`crate::strash`] already performs these implicitly by rebuilding the
//! circuit as an AIG, but it also destroys the original gate vocabulary
//! (everything becomes AND/NOT).  The passes in this module clean a netlist
//! *in place*, preserving gate kinds — useful when inspecting locked designs
//! or preparing them for `.bench` export.

use std::collections::HashMap;

use crate::{GateKind, Netlist, NodeId, NodeKind};

/// Tri-state constant information about a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ConstInfo {
    Zero,
    One,
    Unknown,
}

/// Rewrites the netlist by propagating constants, collapsing buffers and
/// double inverters, and dropping logic not reachable from any output.
///
/// The returned netlist computes the same functions over the same inputs,
/// key inputs and outputs, and is never larger than the input.
///
/// # Example
///
/// ```
/// use netlist::{GateKind, Netlist};
/// use netlist::rewrite::simplify;
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let zero = nl.add_gate("zero", GateKind::Const0, &[]);
/// let anded = nl.add_gate("anded", GateKind::And, &[a, zero]);
/// let or = nl.add_gate("or", GateKind::Or, &[anded, a]);
/// nl.add_output("y", or);
/// let clean = simplify(&nl);
/// // a & 0 = 0, 0 | a = a: the whole thing collapses onto the input.
/// assert_eq!(clean.num_gates(), 0);
/// assert_eq!(clean.evaluate(&[true], &[]), vec![true]);
/// ```
pub fn simplify(netlist: &Netlist) -> Netlist {
    let constants = propagate_constants(netlist);

    let mut out = Netlist::new(netlist.name());
    // Maps old node ids to (new id, negated?) pairs; negation is resolved by
    // materialising NOT gates on demand.
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    let mut const_nodes: [Option<NodeId>; 2] = [None, None];

    let reachable = reachable_from_outputs(netlist);

    for (id, node) in netlist.iter() {
        if !reachable[id.index()] {
            continue;
        }
        match node.kind() {
            NodeKind::Input => {
                map.insert(id, out.add_input(node.name()));
            }
            NodeKind::KeyInput => {
                map.insert(id, out.add_key_input(node.name()));
            }
            NodeKind::Gate { kind, fanins } => {
                // Constant-valued gates are never materialised here; consumers
                // create a shared constant driver on demand (so folded-away
                // logic leaves no residue).
                if constants[id.index()] != ConstInfo::Unknown {
                    continue;
                }
                let mapped: Vec<NodeId> = fanins
                    .iter()
                    .filter(|f| {
                        constants[f.index()] == ConstInfo::Unknown
                            || matches!(kind, GateKind::Buf | GateKind::Not)
                    })
                    .map(|f| map_or_constant(&mut out, &mut const_nodes, &map, &constants, *f))
                    .collect();
                let replacement = rebuild_gate(
                    &mut out,
                    &mut const_nodes,
                    node.name(),
                    *kind,
                    &mapped,
                    fanins,
                    &constants,
                    &map,
                );
                map.insert(id, replacement);
            }
        }
    }

    for (name, driver) in netlist.outputs() {
        let mapped = match constants[driver.index()] {
            ConstInfo::Zero => constant_node(&mut out, &mut const_nodes, false),
            ConstInfo::One => constant_node(&mut out, &mut const_nodes, true),
            ConstInfo::Unknown => map[driver],
        };
        out.add_output(name.clone(), mapped);
    }
    out
}

/// Forward constant propagation over the whole netlist.
fn propagate_constants(netlist: &Netlist) -> Vec<ConstInfo> {
    let mut info = vec![ConstInfo::Unknown; netlist.num_nodes()];
    for (id, node) in netlist.iter() {
        let NodeKind::Gate { kind, fanins } = node.kind() else {
            continue;
        };
        let fanin_info: Vec<ConstInfo> = fanins.iter().map(|f| info[f.index()]).collect();
        info[id.index()] = match kind {
            GateKind::Const0 => ConstInfo::Zero,
            GateKind::Const1 => ConstInfo::One,
            GateKind::Buf => fanin_info[0],
            GateKind::Not => match fanin_info[0] {
                ConstInfo::Zero => ConstInfo::One,
                ConstInfo::One => ConstInfo::Zero,
                ConstInfo::Unknown => ConstInfo::Unknown,
            },
            GateKind::And | GateKind::Nand => {
                let any_zero = fanin_info.contains(&ConstInfo::Zero);
                let all_one = fanin_info.iter().all(|&c| c == ConstInfo::One);
                constant_for(*kind, any_zero, all_one)
            }
            GateKind::Or | GateKind::Nor => {
                let any_one = fanin_info.contains(&ConstInfo::One);
                let all_zero = fanin_info.iter().all(|&c| c == ConstInfo::Zero);
                // OR is "false unless some input is one"; reuse the AND helper
                // with the roles of the dominating / identity values swapped.
                match (*kind, any_one, all_zero) {
                    (GateKind::Or, true, _) => ConstInfo::One,
                    (GateKind::Or, _, true) => ConstInfo::Zero,
                    (GateKind::Nor, true, _) => ConstInfo::Zero,
                    (GateKind::Nor, _, true) => ConstInfo::One,
                    _ => ConstInfo::Unknown,
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                if fanin_info.iter().all(|&c| c != ConstInfo::Unknown) {
                    let parity =
                        fanin_info.iter().filter(|&&c| c == ConstInfo::One).count() % 2 == 1;
                    let value = if *kind == GateKind::Xor {
                        parity
                    } else {
                        !parity
                    };
                    if value {
                        ConstInfo::One
                    } else {
                        ConstInfo::Zero
                    }
                } else {
                    ConstInfo::Unknown
                }
            }
        };
    }
    info
}

fn constant_for(kind: GateKind, any_zero: bool, all_one: bool) -> ConstInfo {
    match (kind, any_zero, all_one) {
        (GateKind::And, true, _) => ConstInfo::Zero,
        (GateKind::And, _, true) => ConstInfo::One,
        (GateKind::Nand, true, _) => ConstInfo::One,
        (GateKind::Nand, _, true) => ConstInfo::Zero,
        _ => ConstInfo::Unknown,
    }
}

fn reachable_from_outputs(netlist: &Netlist) -> Vec<bool> {
    let mut reachable = vec![false; netlist.num_nodes()];
    let mut stack: Vec<NodeId> = netlist.outputs().iter().map(|&(_, id)| id).collect();
    while let Some(id) = stack.pop() {
        if reachable[id.index()] {
            continue;
        }
        reachable[id.index()] = true;
        for &fanin in netlist.node(id).fanins() {
            stack.push(fanin);
        }
    }
    // Keep all inputs so the interface stays identical.
    for &id in netlist.inputs().iter().chain(netlist.key_inputs()) {
        reachable[id.index()] = true;
    }
    reachable
}

fn constant_node(out: &mut Netlist, cache: &mut [Option<NodeId>; 2], value: bool) -> NodeId {
    let slot = usize::from(value);
    if let Some(id) = cache[slot] {
        return id;
    }
    let name = out.fresh_name(if value { "_const1_" } else { "_const0_" });
    let kind = if value {
        GateKind::Const1
    } else {
        GateKind::Const0
    };
    let id = out.add_gate(name, kind, &[]);
    cache[slot] = Some(id);
    id
}

fn map_or_constant(
    out: &mut Netlist,
    cache: &mut [Option<NodeId>; 2],
    map: &HashMap<NodeId, NodeId>,
    constants: &[ConstInfo],
    id: NodeId,
) -> NodeId {
    match constants[id.index()] {
        ConstInfo::Zero => constant_node(out, cache, false),
        ConstInfo::One => constant_node(out, cache, true),
        ConstInfo::Unknown => map[&id],
    }
}

/// Rebuilds one gate, applying identity-element simplifications where
/// possible (dropping constant fanins of AND/OR, collapsing buffers).
#[allow(clippy::too_many_arguments)]
fn rebuild_gate(
    out: &mut Netlist,
    cache: &mut [Option<NodeId>; 2],
    name: &str,
    kind: GateKind,
    mapped_unknown: &[NodeId],
    original_fanins: &[NodeId],
    constants: &[ConstInfo],
    map: &HashMap<NodeId, NodeId>,
) -> NodeId {
    match kind {
        GateKind::And | GateKind::Or => {
            // Constant fanins that are the identity element can be dropped.
            if mapped_unknown.len() >= 2 {
                out.add_gate(name, kind, mapped_unknown)
            } else if mapped_unknown.len() == 1 {
                mapped_unknown[0]
            } else {
                // All fanins were identity constants: result is the identity.
                constant_node(out, cache, kind == GateKind::And)
            }
        }
        GateKind::Buf => map_or_constant(out, cache, map, constants, original_fanins[0]),
        _ => {
            // For other gates keep every fanin (materialising constants).
            let full: Vec<NodeId> = original_fanins
                .iter()
                .map(|&f| map_or_constant(out, cache, map, constants, f))
                .collect();
            out.add_gate(name, kind, &full)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::pattern_to_bits;

    fn equivalent(a: &Netlist, b: &Netlist) -> bool {
        let n = a.num_inputs() + a.num_key_inputs();
        (0..(1u64 << n)).all(|pattern| {
            let bits = pattern_to_bits(pattern, n);
            let (ins, keys) = bits.split_at(a.num_inputs());
            a.evaluate(ins, keys) == b.evaluate(ins, keys)
        })
    }

    #[test]
    fn constants_propagate_through_and_or() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let one = nl.add_gate("one", GateKind::Const1, &[]);
        let and1 = nl.add_gate("and1", GateKind::And, &[a, one]);
        let or1 = nl.add_gate("or1", GateKind::Or, &[and1, b]);
        nl.add_output("y", or1);
        let clean = simplify(&nl);
        assert!(equivalent(&nl, &clean));
        assert!(clean.num_gates() < nl.num_gates());
    }

    #[test]
    fn dead_logic_is_removed() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let used = nl.add_gate("used", GateKind::And, &[a, b]);
        let _dead = nl.add_gate("dead", GateKind::Xor, &[a, b]);
        nl.add_output("y", used);
        let clean = simplify(&nl);
        assert_eq!(clean.num_gates(), 1);
        assert!(equivalent(&nl, &clean));
    }

    #[test]
    fn xor_with_constants_folds() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let zero = nl.add_gate("zero", GateKind::Const0, &[]);
        let one = nl.add_gate("one", GateKind::Const1, &[]);
        let x = nl.add_gate("x", GateKind::Xor, &[zero, one]);
        let y = nl.add_gate("y", GateKind::And, &[a, x]);
        nl.add_output("y", y);
        let clean = simplify(&nl);
        assert!(equivalent(&nl, &clean));
        // x folds to constant 1, so y = a & 1 = a.
        assert_eq!(clean.num_gates(), 0);
    }

    #[test]
    fn interface_is_preserved_even_for_unused_inputs() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let _unused = nl.add_input("unused");
        let k = nl.add_key_input("k0");
        let g = nl.add_gate("g", GateKind::Xor, &[a, k]);
        nl.add_output("g", g);
        let clean = simplify(&nl);
        assert_eq!(clean.num_inputs(), 2);
        assert_eq!(clean.num_key_inputs(), 1);
        assert!(equivalent(&nl, &clean));
    }

    #[test]
    fn random_circuits_stay_equivalent_and_never_grow() {
        for seed in 0..8u64 {
            let nl = crate::random::generate(
                &crate::random::RandomCircuitSpec::new("rw", 8, 3, 60).with_seed(seed),
            );
            let clean = simplify(&nl);
            assert!(clean.num_gates() <= nl.num_gates());
            assert!(equivalent(&nl, &clean), "seed {seed}");
        }
    }

    #[test]
    fn constant_output_is_allowed() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let na = nl.add_gate("na", GateKind::Not, &[a]);
        let z = nl.add_gate("z", GateKind::And, &[a, na]);
        nl.add_output("z", z);
        let clean = simplify(&nl);
        assert!(equivalent(&nl, &clean));
    }
}
