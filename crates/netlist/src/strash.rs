//! Whole-netlist structural hashing (the ABC `strash` substitute).
//!
//! Locking schemes insert easily recognisable gates (XOR comparators, wide
//! AND cube detectors).  The paper runs ABC's `strash` on every locked
//! netlist "to minimize any structural bias introduced by our locking
//! implementation" (§ VI-A).  [`strash`] performs the same role here: the
//! netlist is converted to an AIG (XOR/XNOR decomposed, constants propagated,
//! identical structures merged) and converted back to a sea of AND/NOT gates.

use crate::aig::Aig;
use crate::Netlist;

/// Structurally hashes a netlist: returns an equivalent netlist composed only
/// of two-input AND gates and inverters, with shared structure merged.
///
/// The resulting netlist computes the same function (over the same primary
/// inputs, key inputs and outputs) but no longer contains the original gate
/// boundaries, mimicking what a synthesis tool does to a locked design before
/// it is sent to the foundry.
///
/// # Example
///
/// ```
/// use netlist::{GateKind, Netlist};
/// use netlist::strash::strash;
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.add_gate("y", GateKind::Xnor, &[a, b]);
/// nl.add_output("y", y);
/// let opt = strash(&nl);
/// assert_eq!(opt.evaluate(&[true, true], &[]), vec![true]);
/// assert_eq!(opt.evaluate(&[true, false], &[]), vec![false]);
/// ```
pub fn strash(netlist: &Netlist) -> Netlist {
    Aig::from_netlist(netlist).to_netlist()
}

/// Applies [`strash`] repeatedly until the gate count stops shrinking.
///
/// A single pass is already idempotent for most circuits; this exists for
/// callers that want a fixed point guarantee.
pub fn strash_to_fixpoint(netlist: &Netlist) -> Netlist {
    let mut current = strash(netlist);
    loop {
        let next = strash(&current);
        if next.num_gates() >= current.num_gates() {
            return current;
        }
        current = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::pattern_to_bits;
    use crate::GateKind;

    fn majority_plus_d() -> Netlist {
        // The running example of the paper: y = ab + bc + ca + d.
        let mut nl = Netlist::new("paper_fig2a");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let ab = nl.add_gate("ab", GateKind::And, &[a, b]);
        let bc = nl.add_gate("bc", GateKind::And, &[b, c]);
        let ca = nl.add_gate("ca", GateKind::And, &[c, a]);
        let y = nl.add_gate("y", GateKind::Or, &[ab, bc, ca, d]);
        nl.add_output("y", y);
        nl
    }

    #[test]
    fn strash_preserves_function() {
        let nl = majority_plus_d();
        let opt = strash(&nl);
        for pattern in 0..16u64 {
            let bits = pattern_to_bits(pattern, 4);
            assert_eq!(nl.evaluate(&bits, &[]), opt.evaluate(&bits, &[]));
        }
    }

    #[test]
    fn strash_produces_only_and_and_not() {
        let nl = majority_plus_d();
        let opt = strash(&nl);
        for (_, node) in opt.iter() {
            if let Some(kind) = node.gate_kind() {
                assert!(
                    matches!(kind, GateKind::And | GateKind::Not | GateKind::Const0),
                    "unexpected gate kind {kind}"
                );
            }
        }
    }

    #[test]
    fn fixpoint_is_no_larger_than_single_pass() {
        let nl = majority_plus_d();
        let once = strash(&nl);
        let fixed = strash_to_fixpoint(&nl);
        assert!(fixed.num_gates() <= once.num_gates());
        for pattern in 0..16u64 {
            let bits = pattern_to_bits(pattern, 4);
            assert_eq!(nl.evaluate(&bits, &[]), fixed.evaluate(&bits, &[]));
        }
    }

    #[test]
    fn duplicate_logic_is_merged() {
        let mut nl = Netlist::new("dup");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x1 = nl.add_gate("x1", GateKind::And, &[a, b]);
        let x2 = nl.add_gate("x2", GateKind::And, &[a, b]);
        nl.add_output("o1", x1);
        nl.add_output("o2", x2);
        let opt = strash(&nl);
        assert_eq!(opt.num_gates(), 1);
    }
}
