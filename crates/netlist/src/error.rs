//! Error type for netlist construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building, parsing or analysing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A node name was used twice.
    DuplicateName(String),
    /// A referenced signal name does not exist.
    UnknownSignal(String),
    /// A gate was given the wrong number of fanins.
    BadArity {
        /// The gate kind.
        gate: String,
        /// Number of fanins supplied.
        got: usize,
    },
    /// A `.bench` document could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The number of stimulus bits does not match the number of inputs.
    StimulusWidth {
        /// Expected number of bits.
        expected: usize,
        /// Provided number of bits.
        got: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName(name) => write!(f, "duplicate signal name `{name}`"),
            NetlistError::UnknownSignal(name) => write!(f, "unknown signal `{name}`"),
            NetlistError::BadArity { gate, got } => {
                write!(f, "gate `{gate}` cannot take {got} fanins")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "bench parse error at line {line}: {message}")
            }
            NetlistError::StimulusWidth { expected, got } => {
                write!(f, "stimulus has {got} bits but circuit expects {expected}")
            }
        }
    }
}

impl Error for NetlistError {}
