//! Gate-level Hamming-distance comparators.
//!
//! SFLL-HDh needs two of these: the *cube stripping unit* compares the
//! protected inputs against a hard-coded constant cube, and the
//! *functionality restoration unit* compares them against the key inputs.
//! Both assert their output exactly when the Hamming distance equals `h`.

use crate::{GateKind, Netlist, NodeId};

/// Builds a gate-level population counter over `bits` and returns the sum
/// bits, least-significant first.
///
/// The counter is a chain of ripple-carry incrementers, which keeps the
/// structure simple and the gate count close to what a synthesis tool would
/// produce for the SFLL restoration unit.
pub fn population_count(nl: &mut Netlist, bits: &[NodeId]) -> Vec<NodeId> {
    let width = usize::BITS as usize - bits.len().leading_zeros() as usize;
    let width = width.max(1);
    let zero_name = nl.fresh_name("_hd_zero_");
    let zero = nl.add_gate(zero_name, GateKind::Const0, &[]);
    let mut sum: Vec<NodeId> = vec![zero; width];
    for &bit in bits {
        let mut carry = bit;
        for s in sum.iter_mut() {
            let new_s_name = nl.fresh_name("_hd_s_");
            let new_s = nl.add_gate(new_s_name, GateKind::Xor, &[*s, carry]);
            let new_c_name = nl.fresh_name("_hd_c_");
            let new_c = nl.add_gate(new_c_name, GateKind::And, &[*s, carry]);
            *s = new_s;
            carry = new_c;
        }
    }
    sum
}

/// Builds gates asserting that the number encoded by `sum_bits`
/// (least-significant first) equals the constant `value`.
pub fn equals_const(nl: &mut Netlist, sum_bits: &[NodeId], value: usize) -> NodeId {
    let mut terms: Vec<NodeId> = Vec::with_capacity(sum_bits.len());
    for (i, &bit) in sum_bits.iter().enumerate() {
        if (value >> i) & 1 == 1 {
            terms.push(bit);
        } else {
            let name = nl.fresh_name("_hd_eqn_");
            terms.push(nl.add_gate(name, GateKind::Not, &[bit]));
        }
    }
    match terms.len() {
        0 => {
            let name = nl.fresh_name("_hd_true_");
            nl.add_gate(name, GateKind::Const1, &[])
        }
        1 => terms[0],
        _ => {
            let name = nl.fresh_name("_hd_eq_");
            nl.add_gate(name, GateKind::And, &terms)
        }
    }
}

/// Builds gates computing `HD(xs, ys) == h` over two equal-width signal
/// vectors and returns the output node.
///
/// # Panics
///
/// Panics if the vectors have different lengths or `h > xs.len()`.
pub fn hamming_distance_equals(nl: &mut Netlist, xs: &[NodeId], ys: &[NodeId], h: usize) -> NodeId {
    assert_eq!(xs.len(), ys.len(), "vector widths differ");
    assert!(h <= xs.len(), "distance {h} exceeds width {}", xs.len());
    let diffs: Vec<NodeId> = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let name = nl.fresh_name("_hd_d_");
            nl.add_gate(name, GateKind::Xor, &[x, y])
        })
        .collect();
    let sum = population_count(nl, &diffs);
    equals_const(nl, &sum, h)
}

/// Builds gates computing `HD(xs, cube) == h` against a constant cube.
///
/// The constant is folded into the structure: a cube bit of `0` leaves the
/// signal untouched, a cube bit of `1` inverts it (x XOR 1 = NOT x).  This is
/// how the protected cube ends up "hard-coded" in the locked circuit, which
/// is exactly the leakage the FALL attacks exploit.
///
/// # Panics
///
/// Panics if the widths differ or `h > xs.len()`.
pub fn hamming_distance_equals_const(
    nl: &mut Netlist,
    xs: &[NodeId],
    cube: &[bool],
    h: usize,
) -> NodeId {
    assert_eq!(xs.len(), cube.len(), "vector widths differ");
    assert!(h <= xs.len(), "distance {h} exceeds width {}", xs.len());
    let diffs: Vec<NodeId> = xs
        .iter()
        .zip(cube)
        .map(|(&x, &bit)| {
            if bit {
                let name = nl.fresh_name("_hd_d_");
                nl.add_gate(name, GateKind::Not, &[x])
            } else {
                x
            }
        })
        .collect();
    let sum = population_count(nl, &diffs);
    equals_const(nl, &sum, h)
}

/// Builds an equality comparator (`HD == 0`) between a signal vector and the
/// key inputs: the TTLock functionality-restoration structure of AND over
/// XNORs.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn equality_comparator(nl: &mut Netlist, xs: &[NodeId], ys: &[NodeId]) -> NodeId {
    assert_eq!(xs.len(), ys.len(), "vector widths differ");
    let eqs: Vec<NodeId> = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let name = nl.fresh_name("_eq_");
            nl.add_gate(name, GateKind::Xnor, &[x, y])
        })
        .collect();
    match eqs.len() {
        0 => {
            let name = nl.fresh_name("_eq_true_");
            nl.add_gate(name, GateKind::Const1, &[])
        }
        1 => eqs[0],
        _ => {
            let name = nl.fresh_name("_eq_all_");
            nl.add_gate(name, GateKind::And, &eqs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::pattern_to_bits;

    fn hamming(a: u64, b: u64) -> u32 {
        (a ^ b).count_ones()
    }

    #[test]
    fn popcount_matches_reference() {
        for n in 1..=6usize {
            let mut nl = Netlist::new("pc");
            let inputs: Vec<NodeId> = (0..n).map(|i| nl.add_input(format!("x{i}"))).collect();
            let sum = population_count(&mut nl, &inputs);
            for (i, &s) in sum.iter().enumerate() {
                nl.add_output(format!("s{i}"), s);
            }
            for pattern in 0..(1u64 << n) {
                let bits = pattern_to_bits(pattern, n);
                let outs = nl.evaluate(&bits, &[]);
                let got: u64 = outs.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
                assert_eq!(
                    got,
                    pattern.count_ones() as u64,
                    "n={n} pattern={pattern:b}"
                );
            }
        }
    }

    #[test]
    fn hd_equals_between_two_vectors() {
        let n = 4;
        for h in 0..=n {
            let mut nl = Netlist::new("hd");
            let xs: Vec<NodeId> = (0..n).map(|i| nl.add_input(format!("x{i}"))).collect();
            let ys: Vec<NodeId> = (0..n).map(|i| nl.add_input(format!("y{i}"))).collect();
            let out = hamming_distance_equals(&mut nl, &xs, &ys, h);
            nl.add_output("eq", out);
            for pattern in 0..(1u64 << (2 * n)) {
                let bits = pattern_to_bits(pattern, 2 * n);
                let got = nl.evaluate(&bits, &[])[0];
                let x = pattern & 0xF;
                let y = (pattern >> 4) & 0xF;
                assert_eq!(
                    got,
                    hamming(x, y) as usize == h,
                    "h={h} x={x:04b} y={y:04b}"
                );
            }
        }
    }

    #[test]
    fn hd_equals_const_cube() {
        let n = 5;
        let cube = 0b10110u64;
        let cube_bits = pattern_to_bits(cube, n);
        for h in [0usize, 1, 2] {
            let mut nl = Netlist::new("hdc");
            let xs: Vec<NodeId> = (0..n).map(|i| nl.add_input(format!("x{i}"))).collect();
            let out = hamming_distance_equals_const(&mut nl, &xs, &cube_bits, h);
            nl.add_output("eq", out);
            for pattern in 0..(1u64 << n) {
                let bits = pattern_to_bits(pattern, n);
                let got = nl.evaluate(&bits, &[])[0];
                assert_eq!(got, hamming(pattern, cube) as usize == h);
            }
        }
    }

    #[test]
    fn equality_comparator_matches() {
        let n = 3;
        let mut nl = Netlist::new("eq");
        let xs: Vec<NodeId> = (0..n).map(|i| nl.add_input(format!("x{i}"))).collect();
        let ks: Vec<NodeId> = (0..n).map(|i| nl.add_key_input(format!("k{i}"))).collect();
        let out = equality_comparator(&mut nl, &xs, &ks);
        nl.add_output("eq", out);
        for xp in 0..(1u64 << n) {
            for kp in 0..(1u64 << n) {
                let got = nl.evaluate(&pattern_to_bits(xp, n), &pattern_to_bits(kp, n))[0];
                assert_eq!(got, xp == kp);
            }
        }
    }
}
