//! The gate-level netlist data structure.

use std::collections::HashMap;
use std::fmt;

use crate::{GateKind, NetlistError};

/// Identifier of a node (input or gate) inside a [`Netlist`].
///
/// Node identifiers are dense indices; nodes are stored in topological order
/// (every fanin of a gate has a smaller identifier), which construction
/// enforces automatically.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its index.
    pub(crate) fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }

    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// What a node is: a primary input, a key input, or a gate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// A primary (circuit) input.
    Input,
    /// A key input added by a locking scheme.
    KeyInput,
    /// A logic gate.
    Gate {
        /// The gate kind.
        kind: GateKind,
        /// Fanin nodes, in order.
        fanins: Vec<NodeId>,
    },
}

/// A single node of the netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    name: String,
    kind: NodeKind,
}

impl Node {
    /// The signal name of this node.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node kind.
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// Returns the fanins of this node (empty for inputs).
    pub fn fanins(&self) -> &[NodeId] {
        match &self.kind {
            NodeKind::Gate { fanins, .. } => fanins,
            _ => &[],
        }
    }

    /// Returns the gate kind, or `None` for inputs.
    pub fn gate_kind(&self) -> Option<GateKind> {
        match &self.kind {
            NodeKind::Gate { kind, .. } => Some(*kind),
            _ => None,
        }
    }

    /// Returns `true` if this node is a primary or key input.
    pub fn is_input(&self) -> bool {
        matches!(self.kind, NodeKind::Input | NodeKind::KeyInput)
    }

    /// Returns `true` if this node is a key input.
    pub fn is_key_input(&self) -> bool {
        matches!(self.kind, NodeKind::KeyInput)
    }
}

/// A combinational gate-level netlist with primary inputs, key inputs and
/// named outputs.
///
/// The netlist is a DAG: gates may only reference nodes that already exist,
/// so node ids are always in topological order.
///
/// # Example
///
/// ```
/// use netlist::{GateKind, Netlist};
///
/// let mut nl = Netlist::new("mux");
/// let s = nl.add_input("s");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let ns = nl.add_gate("ns", GateKind::Not, &[s]);
/// let t0 = nl.add_gate("t0", GateKind::And, &[ns, a]);
/// let t1 = nl.add_gate("t1", GateKind::And, &[s, b]);
/// let y = nl.add_gate("y", GateKind::Or, &[t0, t1]);
/// nl.add_output("y", y);
/// assert_eq!(nl.evaluate(&[false, true, false], &[]), vec![true]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    key_inputs: Vec<NodeId>,
    input_positions: HashMap<NodeId, usize>,
    key_positions: HashMap<NodeId, usize>,
    outputs: Vec<(String, NodeId)>,
    names: HashMap<String, NodeId>,
    fresh_counter: u64,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of nodes (inputs + gates).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of gate nodes (excluding inputs).
    pub fn num_gates(&self) -> usize {
        self.nodes.len() - self.inputs.len() - self.key_inputs.len()
    }

    /// Number of primary (non-key) inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of key inputs.
    pub fn num_key_inputs(&self) -> usize {
        self.key_inputs.len()
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The primary inputs in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The key inputs in declaration order.
    pub fn key_inputs(&self) -> &[NodeId] {
        &self.key_inputs
    }

    /// The outputs as `(name, node)` pairs in declaration order.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Returns the node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterates over `(id, node)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// Iterates over the ids of all gate nodes in topological order.
    pub fn gate_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().filter(|(_, n)| !n.is_input()).map(|(id, _)| id)
    }

    /// Looks a node up by name.
    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// Returns `true` if `id` is a primary (non-key) input.
    pub fn is_primary_input(&self, id: NodeId) -> bool {
        matches!(self.node(id).kind(), NodeKind::Input)
    }

    /// Returns `true` if `id` is a key input.
    pub fn is_key_input(&self, id: NodeId) -> bool {
        self.node(id).is_key_input()
    }

    /// Returns the declaration-order position of a primary input, or `None`
    /// if `id` is not a primary input of this netlist.
    ///
    /// This is a precomputed O(1) lookup (the inverse of indexing into
    /// [`Netlist::inputs`]), maintained incrementally as inputs are added.
    pub fn input_position(&self, id: NodeId) -> Option<usize> {
        self.input_positions.get(&id).copied()
    }

    /// Returns the declaration-order position of a key input, or `None` if
    /// `id` is not a key input of this netlist.
    ///
    /// The key-input counterpart of [`Netlist::input_position`].
    pub fn key_input_position(&self, id: NodeId) -> Option<usize> {
        self.key_positions.get(&id).copied()
    }

    /// Adds a primary input.
    ///
    /// # Panics
    ///
    /// Panics if the name is already in use.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name.into(), NodeKind::Input)
    }

    /// Adds a key input.
    ///
    /// # Panics
    ///
    /// Panics if the name is already in use.
    pub fn add_key_input(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name.into(), NodeKind::KeyInput)
    }

    /// Adds a gate with an explicit name.
    ///
    /// # Panics
    ///
    /// Panics if the name is already in use, if a fanin id does not belong to
    /// this netlist, or if the fanin count is invalid for the gate kind.
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        fanins: &[NodeId],
    ) -> NodeId {
        assert!(
            kind.arity_ok(fanins.len()),
            "gate {kind} cannot take {} fanins",
            fanins.len()
        );
        for &f in fanins {
            assert!(
                f.index() < self.nodes.len(),
                "fanin {f:?} does not exist in this netlist"
            );
        }
        self.add_node(
            name.into(),
            NodeKind::Gate {
                kind,
                fanins: fanins.to_vec(),
            },
        )
    }

    /// Adds a gate with an automatically generated unique name.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Netlist::add_gate`].
    pub fn add_gate_auto(&mut self, kind: GateKind, fanins: &[NodeId]) -> NodeId {
        let name = self.fresh_name("_g");
        self.add_gate(name, kind, fanins)
    }

    /// Generates a fresh signal name with the given prefix.
    pub fn fresh_name(&mut self, prefix: &str) -> String {
        loop {
            let candidate = format!("{prefix}{}", self.fresh_counter);
            self.fresh_counter += 1;
            if !self.names.contains_key(&candidate) {
                return candidate;
            }
        }
    }

    /// Declares `node` as an output with the given name.
    ///
    /// The same node may drive several outputs.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this netlist.
    pub fn add_output(&mut self, name: impl Into<String>, node: NodeId) {
        assert!(
            node.index() < self.nodes.len(),
            "output driver {node:?} does not exist"
        );
        self.outputs.push((name.into(), node));
    }

    /// Replaces the driver of the `index`-th output (declaration order),
    /// keeping its name.  Used by locking schemes to splice restoration logic
    /// in front of a protected output.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `node` does not belong to this
    /// netlist.
    pub fn replace_output(&mut self, index: usize, node: NodeId) {
        assert!(index < self.outputs.len(), "output index out of range");
        assert!(
            node.index() < self.nodes.len(),
            "output driver {node:?} does not exist"
        );
        self.outputs[index].1 = node;
    }

    fn add_node(&mut self, name: String, kind: NodeKind) -> NodeId {
        assert!(
            !self.names.contains_key(&name),
            "duplicate signal name `{name}`"
        );
        let id = NodeId::from_index(self.nodes.len());
        self.names.insert(name.clone(), id);
        match kind {
            NodeKind::Input => {
                self.input_positions.insert(id, self.inputs.len());
                self.inputs.push(id);
            }
            NodeKind::KeyInput => {
                self.key_positions.insert(id, self.key_inputs.len());
                self.key_inputs.push(id);
            }
            NodeKind::Gate { .. } => {}
        }
        self.nodes.push(Node { name, kind });
        id
    }

    /// Checks internal consistency: unique names, valid fanins, valid arities
    /// and at least one output.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let mut seen = HashMap::new();
        for (id, node) in self.iter() {
            if let Some(_prev) = seen.insert(node.name().to_string(), id) {
                return Err(NetlistError::DuplicateName(node.name().to_string()));
            }
            if let NodeKind::Gate { kind, fanins } = node.kind() {
                if !kind.arity_ok(fanins.len()) {
                    return Err(NetlistError::BadArity {
                        gate: kind.to_string(),
                        got: fanins.len(),
                    });
                }
                for f in fanins {
                    if f.index() >= id.index() {
                        return Err(NetlistError::UnknownSignal(format!(
                            "fanin {f:?} of {} is not topologically earlier",
                            node.name()
                        )));
                    }
                }
            }
        }
        for (name, node) in &self.outputs {
            if node.index() >= self.nodes.len() {
                return Err(NetlistError::UnknownSignal(name.clone()));
            }
        }
        Ok(())
    }

    /// Returns a short multi-line summary of the netlist (sizes per category).
    pub fn summary(&self) -> String {
        format!(
            "{}: {} inputs, {} key inputs, {} outputs, {} gates",
            self.name,
            self.num_inputs(),
            self.num_key_inputs(),
            self.num_outputs(),
            self.num_gates()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let k = nl.add_key_input("k0");
        let g = nl.add_gate("g", GateKind::Xor, &[a, k]);
        nl.add_output("y", g);

        assert_eq!(nl.num_inputs(), 1);
        assert_eq!(nl.num_key_inputs(), 1);
        assert_eq!(nl.num_gates(), 1);
        assert_eq!(nl.num_outputs(), 1);
        assert!(nl.is_primary_input(a));
        assert!(nl.is_key_input(k));
        assert!(!nl.is_key_input(g));
        assert_eq!(nl.lookup("g"), Some(g));
        assert_eq!(nl.lookup("missing"), None);
        assert!(nl.validate().is_ok());
        assert_eq!(nl.input_position(a), Some(0));
        assert_eq!(nl.input_position(k), None);
        assert_eq!(nl.key_input_position(k), Some(0));
        assert_eq!(nl.key_input_position(g), None);
    }

    #[test]
    fn positions_track_declaration_order() {
        let mut nl = Netlist::new("t");
        let ins: Vec<NodeId> = (0..5).map(|i| nl.add_input(format!("i{i}"))).collect();
        let keys: Vec<NodeId> = (0..3).map(|i| nl.add_key_input(format!("k{i}"))).collect();
        for (pos, &id) in ins.iter().enumerate() {
            assert_eq!(nl.input_position(id), Some(pos));
            assert_eq!(nl.key_input_position(id), None);
        }
        for (pos, &id) in keys.iter().enumerate() {
            assert_eq!(nl.key_input_position(id), Some(pos));
            assert_eq!(nl.input_position(id), None);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate signal name")]
    fn duplicate_names_panic() {
        let mut nl = Netlist::new("t");
        nl.add_input("a");
        nl.add_input("a");
    }

    #[test]
    #[should_panic(expected = "cannot take")]
    fn bad_arity_panics() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        nl.add_gate("g", GateKind::And, &[a]);
    }

    #[test]
    fn fresh_names_are_unique() {
        let mut nl = Netlist::new("t");
        nl.add_input("_g0");
        let n1 = nl.fresh_name("_g");
        let n2 = nl.fresh_name("_g");
        assert_ne!(n1, "_g0");
        assert_ne!(n1, n2);
    }

    #[test]
    fn gate_ids_excludes_inputs() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate("g", GateKind::And, &[a, b]);
        nl.add_output("g", g);
        let gates: Vec<NodeId> = nl.gate_ids().collect();
        assert_eq!(gates, vec![g]);
    }

    #[test]
    fn summary_mentions_counts() {
        let mut nl = Netlist::new("demo");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate("g", GateKind::Or, &[a, b]);
        nl.add_output("y", g);
        let s = nl.summary();
        assert!(s.contains("demo"));
        assert!(s.contains("2 inputs"));
    }
}
