//! Graphviz DOT export for visual inspection of (locked) netlists.

use crate::{Netlist, NodeKind};

/// Renders the netlist as a Graphviz `digraph`.
///
/// Primary inputs are drawn as triangles, key inputs as red triangles, gates
/// as boxes labelled with their kind, and outputs as double circles — handy
/// for eyeballing where a locking scheme spliced its logic.
///
/// # Example
///
/// ```
/// use netlist::{GateKind, Netlist};
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let k = nl.add_key_input("keyinput0");
/// let g = nl.add_gate("g", GateKind::Xor, &[a, k]);
/// nl.add_output("y", g);
/// let dot = netlist::dot::to_dot(&nl);
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("keyinput0"));
/// ```
pub fn to_dot(netlist: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", escape(netlist.name())));
    out.push_str("  rankdir=TB;\n");
    out.push_str("  node [fontname=\"monospace\"];\n");

    for (id, node) in netlist.iter() {
        let name = escape(node.name());
        match node.kind() {
            NodeKind::Input => {
                out.push_str(&format!(
                    "  n{} [label=\"{}\", shape=triangle];\n",
                    id.index(),
                    name
                ));
            }
            NodeKind::KeyInput => {
                out.push_str(&format!(
                    "  n{} [label=\"{}\", shape=triangle, color=red, fontcolor=red];\n",
                    id.index(),
                    name
                ));
            }
            NodeKind::Gate { kind, fanins } => {
                out.push_str(&format!(
                    "  n{} [label=\"{}\\n{}\", shape=box];\n",
                    id.index(),
                    name,
                    kind
                ));
                for fanin in fanins {
                    out.push_str(&format!("  n{} -> n{};\n", fanin.index(), id.index()));
                }
            }
        }
    }
    for (i, (name, driver)) in netlist.outputs().iter().enumerate() {
        out.push_str(&format!(
            "  out{} [label=\"{}\", shape=doublecircle];\n",
            i,
            escape(name)
        ));
        out.push_str(&format!("  n{} -> out{};\n", driver.index(), i));
    }
    out.push_str("}\n");
    out
}

fn escape(text: &str) -> String {
    text.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    #[test]
    fn dot_contains_every_node_and_edge() {
        let mut nl = Netlist::new("dot_test");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate("g", GateKind::And, &[a, b]);
        nl.add_output("y", g);
        let dot = to_dot(&nl);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("shape=triangle"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("doublecircle"));
        assert_eq!(dot.matches("->").count(), 3);
    }

    #[test]
    fn key_inputs_are_highlighted() {
        let mut nl = Netlist::new("dot_keys");
        let a = nl.add_input("a");
        let k = nl.add_key_input("keyinput0");
        let g = nl.add_gate("g", GateKind::Xnor, &[a, k]);
        nl.add_output("y", g);
        let dot = to_dot(&nl);
        assert!(dot.contains("color=red"));
    }

    #[test]
    fn quotes_in_names_are_escaped() {
        let mut nl = Netlist::new("weird\"name");
        let a = nl.add_input("a");
        nl.add_output("y", a);
        let dot = to_dot(&nl);
        assert!(dot.contains("weird\\\"name"));
    }
}
