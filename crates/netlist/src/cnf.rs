//! Tseitin encoding of netlists into the [`sat`] solver.
//!
//! The attacks repeatedly instantiate copies of (parts of) a circuit inside a
//! SAT solver: the SAT attack needs two key copies sharing the same inputs,
//! the functional analyses need two input copies of a single cone, and so on.
//! [`encode`] and [`encode_cones`] support this by letting the caller pin the
//! literals used for primary and key inputs.

use sat::{Lit, Solver};

use crate::{GateKind, Netlist, NodeId, NodeKind};

/// How input pins are bound when encoding a circuit copy.
#[derive(Clone, Debug, Default)]
pub struct PinBinding {
    /// Literals to use for the primary inputs (in declaration order).  Fresh
    /// variables are created when `None`.
    pub inputs: Option<Vec<Lit>>,
    /// Literals to use for the key inputs (in declaration order).  Fresh
    /// variables are created when `None`.
    pub keys: Option<Vec<Lit>>,
}

/// The result of encoding a circuit (or a set of cones) into a solver.
#[derive(Clone, Debug)]
pub struct CircuitEncoding {
    /// Literal of every encoded node, indexed by [`NodeId::index`].  `None`
    /// for nodes outside the encoded cones.
    pub node_lits: Vec<Option<Lit>>,
    /// Literals of the primary inputs, in declaration order.
    pub inputs: Vec<Lit>,
    /// Literals of the key inputs, in declaration order.
    pub keys: Vec<Lit>,
    /// Literals of the outputs, in declaration order.
    pub outputs: Vec<Lit>,
}

impl CircuitEncoding {
    /// Returns the literal of `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node was not part of the encoded cones.
    pub fn lit(&self, node: NodeId) -> Lit {
        self.node_lits[node.index()].expect("node was not encoded")
    }
}

/// Encodes the whole netlist into `solver` and returns the pin literals.
///
/// # Example
///
/// ```
/// use netlist::{GateKind, Netlist};
/// use netlist::cnf::{encode, PinBinding};
/// use sat::{Solver, SolveResult};
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.add_gate("y", GateKind::And, &[a, b]);
/// nl.add_output("y", y);
///
/// let mut solver = Solver::new();
/// let enc = encode(&nl, &mut solver, &PinBinding::default());
/// // Force the output true: both inputs must be true.
/// solver.add_clause([enc.outputs[0]]);
/// assert_eq!(solver.solve(), SolveResult::Sat);
/// assert_eq!(solver.value(enc.inputs[0]), Some(true));
/// assert_eq!(solver.value(enc.inputs[1]), Some(true));
/// ```
pub fn encode(netlist: &Netlist, solver: &mut Solver, pins: &PinBinding) -> CircuitEncoding {
    let roots: Vec<NodeId> = netlist.outputs().iter().map(|&(_, id)| id).collect();
    encode_cones(netlist, solver, &roots, pins)
}

/// Encodes only the transitive fanin cones of `roots` into `solver`.
///
/// Inputs outside the cones still receive literals (taken from `pins` or
/// freshly allocated) so that pin vectors always have the full width.
pub fn encode_cones(
    netlist: &Netlist,
    solver: &mut Solver,
    roots: &[NodeId],
    pins: &PinBinding,
) -> CircuitEncoding {
    // Mark the union of the cones.
    let mut in_cone = vec![false; netlist.num_nodes()];
    let mut stack: Vec<NodeId> = roots.to_vec();
    for &r in roots {
        in_cone[r.index()] = true;
    }
    while let Some(id) = stack.pop() {
        for &f in netlist.node(id).fanins() {
            if !in_cone[f.index()] {
                in_cone[f.index()] = true;
                stack.push(f);
            }
        }
    }

    let mut node_lits: Vec<Option<Lit>> = vec![None; netlist.num_nodes()];

    // Bind or allocate the input pins.
    let input_lits: Vec<Lit> = match &pins.inputs {
        Some(lits) => {
            assert_eq!(lits.len(), netlist.num_inputs(), "primary input pin width");
            lits.clone()
        }
        None => (0..netlist.num_inputs())
            .map(|_| Lit::positive(solver.new_var()))
            .collect(),
    };
    let key_lits: Vec<Lit> = match &pins.keys {
        Some(lits) => {
            assert_eq!(lits.len(), netlist.num_key_inputs(), "key input pin width");
            lits.clone()
        }
        None => (0..netlist.num_key_inputs())
            .map(|_| Lit::positive(solver.new_var()))
            .collect(),
    };
    for (pos, &id) in netlist.inputs().iter().enumerate() {
        node_lits[id.index()] = Some(input_lits[pos]);
    }
    for (pos, &id) in netlist.key_inputs().iter().enumerate() {
        node_lits[id.index()] = Some(key_lits[pos]);
    }

    let mut const_false: Option<Lit> = None;

    for (id, node) in netlist.iter() {
        if !in_cone[id.index()] || node.is_input() {
            continue;
        }
        let NodeKind::Gate { kind, fanins } = node.kind() else {
            continue;
        };
        let fanin_lits: Vec<Lit> = fanins
            .iter()
            .map(|f| node_lits[f.index()].expect("fanins are topologically earlier"))
            .collect();
        let lit = encode_gate(solver, *kind, &fanin_lits, &mut const_false);
        node_lits[id.index()] = Some(lit);
    }

    // Outputs outside the requested cones are skipped; for whole-netlist
    // encoding every output is present and order is preserved.
    let outputs: Vec<Lit> = netlist
        .outputs()
        .iter()
        .filter_map(|&(_, id)| node_lits[id.index()])
        .collect();

    CircuitEncoding {
        node_lits,
        inputs: input_lits,
        keys: key_lits,
        outputs,
    }
}

fn false_lit(solver: &mut Solver, cache: &mut Option<Lit>) -> Lit {
    *cache.get_or_insert_with(|| {
        let lit = Lit::positive(solver.new_var());
        solver.add_clause([!lit]);
        lit
    })
}

fn encode_gate(
    solver: &mut Solver,
    kind: GateKind,
    fanins: &[Lit],
    const_false: &mut Option<Lit>,
) -> Lit {
    match kind {
        GateKind::Const0 => false_lit(solver, const_false),
        GateKind::Const1 => !false_lit(solver, const_false),
        GateKind::Buf => fanins[0],
        GateKind::Not => !fanins[0],
        GateKind::And => encode_and(solver, fanins),
        GateKind::Nand => !encode_and(solver, fanins),
        GateKind::Or => !encode_and(solver, &fanins.iter().map(|&l| !l).collect::<Vec<_>>()),
        GateKind::Nor => encode_and(solver, &fanins.iter().map(|&l| !l).collect::<Vec<_>>()),
        GateKind::Xor => encode_xor(solver, fanins),
        GateKind::Xnor => !encode_xor(solver, fanins),
    }
}

/// Encodes `y = AND(fanins)` and returns `y`.
fn encode_and(solver: &mut Solver, fanins: &[Lit]) -> Lit {
    let y = Lit::positive(solver.new_var());
    let mut long_clause: Vec<Lit> = Vec::with_capacity(fanins.len() + 1);
    for &f in fanins {
        solver.add_clause([!y, f]);
        long_clause.push(!f);
    }
    long_clause.push(y);
    solver.add_clause(long_clause);
    y
}

/// Encodes the parity of `fanins` with a chain of two-input XORs.
fn encode_xor(solver: &mut Solver, fanins: &[Lit]) -> Lit {
    let mut acc = fanins[0];
    for &f in &fanins[1..] {
        acc = encode_xor2(solver, acc, f);
    }
    acc
}

fn encode_xor2(solver: &mut Solver, a: Lit, b: Lit) -> Lit {
    let y = Lit::positive(solver.new_var());
    solver.add_clause([!a, !b, !y]);
    solver.add_clause([a, b, !y]);
    solver.add_clause([a, !b, y]);
    solver.add_clause([!a, b, y]);
    y
}

/// Adds clauses forcing `lit` to equal the constant `value`.
pub fn assert_lit_equals(solver: &mut Solver, lit: Lit, value: bool) {
    solver.add_clause([if value { lit } else { !lit }]);
}

/// Adds clauses forcing two literal vectors to be pairwise equal.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn assert_equal(solver: &mut Solver, a: &[Lit], b: &[Lit]) {
    assert_eq!(a.len(), b.len(), "vector widths differ");
    for (&x, &y) in a.iter().zip(b) {
        solver.add_clause([!x, y]);
        solver.add_clause([x, !y]);
    }
}

/// Creates a literal that is true iff the two literal vectors differ in at
/// least one position (a miter over multiple outputs).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn encode_any_difference(solver: &mut Solver, a: &[Lit], b: &[Lit]) -> Lit {
    assert_eq!(a.len(), b.len(), "vector widths differ");
    let diffs: Vec<Lit> = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| encode_xor2(solver, x, y))
        .collect();
    // OR of all difference bits.
    !encode_and(solver, &diffs.iter().map(|&d| !d).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::pattern_to_bits;
    use sat::SolveResult;

    fn check_encoding_matches_simulation(nl: &Netlist) {
        let width = nl.num_inputs() + nl.num_key_inputs();
        assert!(width <= 12, "exhaustive check only for small circuits");
        for pattern in 0..(1u64 << width) {
            let bits = pattern_to_bits(pattern, width);
            let (ins, keys) = bits.split_at(nl.num_inputs());
            let expected = nl.evaluate(ins, keys);

            let mut solver = Solver::new();
            let enc = encode(nl, &mut solver, &PinBinding::default());
            for (i, &lit) in enc.inputs.iter().enumerate() {
                assert_lit_equals(&mut solver, lit, ins[i]);
            }
            for (i, &lit) in enc.keys.iter().enumerate() {
                assert_lit_equals(&mut solver, lit, keys[i]);
            }
            assert_eq!(solver.solve(), SolveResult::Sat);
            let got: Vec<bool> = enc
                .outputs
                .iter()
                .map(|&l| solver.value(l).expect("assigned"))
                .collect();
            assert_eq!(got, expected, "pattern {pattern:b}");
        }
    }

    #[test]
    fn all_gate_kinds_encode_correctly() {
        let mut nl = Netlist::new("gates");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let and = nl.add_gate("and", GateKind::And, &[a, b, c]);
        let nand = nl.add_gate("nand", GateKind::Nand, &[a, b]);
        let or = nl.add_gate("or", GateKind::Or, &[a, b, c]);
        let nor = nl.add_gate("nor", GateKind::Nor, &[a, c]);
        let xor = nl.add_gate("xor", GateKind::Xor, &[a, b, c]);
        let xnor = nl.add_gate("xnor", GateKind::Xnor, &[b, c]);
        let not = nl.add_gate("not", GateKind::Not, &[xor]);
        let buf = nl.add_gate("buf", GateKind::Buf, &[nand]);
        let c0 = nl.add_gate("c0", GateKind::Const0, &[]);
        let c1 = nl.add_gate("c1", GateKind::Const1, &[]);
        let mix = nl.add_gate("mix", GateKind::Or, &[c0, c1, not, buf]);
        for (name, id) in [
            ("o_and", and),
            ("o_nand", nand),
            ("o_or", or),
            ("o_nor", nor),
            ("o_xor", xor),
            ("o_xnor", xnor),
            ("o_mix", mix),
        ] {
            nl.add_output(name, id);
        }
        check_encoding_matches_simulation(&nl);
    }

    #[test]
    fn keyed_circuit_encoding() {
        let mut nl = Netlist::new("keyed");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let k = nl.add_key_input("k0");
        let x = nl.add_gate("x", GateKind::Xor, &[a, k]);
        let y = nl.add_gate("y", GateKind::And, &[x, b]);
        nl.add_output("y", y);
        check_encoding_matches_simulation(&nl);
    }

    #[test]
    fn pinned_inputs_are_shared_between_copies() {
        // Encode the same circuit twice sharing inputs but with distinct keys;
        // forcing the two outputs to differ must force the keys to differ.
        let mut nl = Netlist::new("shared");
        let a = nl.add_input("a");
        let k = nl.add_key_input("k0");
        let y = nl.add_gate("y", GateKind::Xor, &[a, k]);
        nl.add_output("y", y);

        let mut solver = Solver::new();
        let first = encode(&nl, &mut solver, &PinBinding::default());
        let second = encode(
            &nl,
            &mut solver,
            &PinBinding {
                inputs: Some(first.inputs.clone()),
                keys: None,
            },
        );
        let diff = encode_any_difference(&mut solver, &first.outputs, &second.outputs);
        solver.add_clause([diff]);
        assert_eq!(solver.solve(), SolveResult::Sat);
        let k1 = solver.value(first.keys[0]).unwrap();
        let k2 = solver.value(second.keys[0]).unwrap();
        assert_ne!(k1, k2);
    }

    #[test]
    fn assert_equal_forces_equality() {
        let mut solver = Solver::new();
        let a = Lit::positive(solver.new_var());
        let b = Lit::positive(solver.new_var());
        assert_equal(&mut solver, &[a], &[b]);
        solver.add_clause([a]);
        assert_eq!(solver.solve(), SolveResult::Sat);
        assert_eq!(solver.value(b), Some(true));
    }

    #[test]
    fn cone_encoding_skips_unrelated_logic() {
        let mut nl = Netlist::new("cones");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate("g1", GateKind::And, &[a, b]);
        let g2 = nl.add_gate("g2", GateKind::Or, &[a, b]);
        nl.add_output("g1", g1);
        nl.add_output("g2", g2);
        let mut solver = Solver::new();
        let enc = encode_cones(&nl, &mut solver, &[g1], &PinBinding::default());
        assert!(enc.node_lits[g1.index()].is_some());
        assert!(enc.node_lits[g2.index()].is_none());
    }
}
