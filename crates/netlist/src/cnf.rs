//! Tseitin encoding of netlists into the [`sat`] solver.
//!
//! The attacks repeatedly instantiate copies of (parts of) a circuit inside a
//! SAT solver: the SAT attack needs two key copies sharing the same inputs,
//! the functional analyses need two input copies of a single cone, and so on.
//! [`encode`] and [`encode_cones`] support this by letting the caller pin the
//! literals used for primary and key inputs.

use sat::{Lit, Solver};

use crate::{GateKind, Netlist, NodeId, NodeKind};

/// How input pins are bound when encoding a circuit copy.
#[derive(Clone, Debug, Default)]
pub struct PinBinding {
    /// Literals to use for the primary inputs (in declaration order).  Fresh
    /// variables are created when `None`.
    pub inputs: Option<Vec<Lit>>,
    /// Literals to use for the key inputs (in declaration order).  Fresh
    /// variables are created when `None`.
    pub keys: Option<Vec<Lit>>,
}

/// The result of encoding a circuit (or a set of cones) into a solver.
#[derive(Clone, Debug)]
pub struct CircuitEncoding {
    /// Literal of every encoded node, indexed by [`NodeId::index`].  `None`
    /// for nodes outside the encoded cones.
    pub node_lits: Vec<Option<Lit>>,
    /// Literals of the primary inputs, in declaration order.
    pub inputs: Vec<Lit>,
    /// Literals of the key inputs, in declaration order.
    pub keys: Vec<Lit>,
    /// Literals of the outputs, in declaration order.
    pub outputs: Vec<Lit>,
}

impl CircuitEncoding {
    /// Returns the literal of `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node was not part of the encoded cones.
    pub fn lit(&self, node: NodeId) -> Lit {
        self.node_lits[node.index()].expect("node was not encoded")
    }
}

/// Encodes the whole netlist into `solver` and returns the pin literals.
///
/// # Example
///
/// ```
/// use netlist::{GateKind, Netlist};
/// use netlist::cnf::{encode, PinBinding};
/// use sat::{Solver, SolveResult};
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.add_gate("y", GateKind::And, &[a, b]);
/// nl.add_output("y", y);
///
/// let mut solver = Solver::new();
/// let enc = encode(&nl, &mut solver, &PinBinding::default());
/// // Force the output true: both inputs must be true.
/// solver.add_clause([enc.outputs[0]]);
/// assert_eq!(solver.solve(), SolveResult::Sat);
/// assert_eq!(solver.value(enc.inputs[0]), Some(true));
/// assert_eq!(solver.value(enc.inputs[1]), Some(true));
/// ```
pub fn encode(netlist: &Netlist, solver: &mut Solver, pins: &PinBinding) -> CircuitEncoding {
    let roots: Vec<NodeId> = netlist.outputs().iter().map(|&(_, id)| id).collect();
    encode_cones(netlist, solver, &roots, pins)
}

/// Encodes only the transitive fanin cones of `roots` into `solver`.
///
/// Inputs outside the cones still receive literals (taken from `pins` or
/// freshly allocated) so that pin vectors always have the full width.
pub fn encode_cones(
    netlist: &Netlist,
    solver: &mut Solver,
    roots: &[NodeId],
    pins: &PinBinding,
) -> CircuitEncoding {
    let mut encoder = IncrementalEncoder::new(netlist, solver, pins);
    for &root in roots {
        encoder.encode_cone(netlist, solver, root);
    }
    encoder.into_encoding(netlist)
}

/// An encoder that emits circuit logic into an existing solver variable space
/// *incrementally* and memoizes every node it has already encoded.
///
/// Where [`encode_cones`] re-encodes overlapping cones from scratch on every
/// call, an `IncrementalEncoder` is created once per (circuit copy, solver)
/// pair and reused across queries: the first [`encode_cone`] call for a root
/// encodes its transitive fanin, and later calls — for the same root or for
/// any root whose cone overlaps — only encode the nodes not seen before.
/// This is the substrate of the attack session's cone memoization.
///
/// [`encode_cone`]: IncrementalEncoder::encode_cone
#[derive(Clone, Debug)]
pub struct IncrementalEncoder {
    node_lits: Vec<Option<Lit>>,
    inputs: Vec<Lit>,
    keys: Vec<Lit>,
    const_false: Option<Lit>,
}

impl IncrementalEncoder {
    /// Binds (or allocates) the input and key pins; encodes no gates yet.
    ///
    /// # Panics
    ///
    /// Panics if a pin vector in `pins` has the wrong width.
    pub fn new(netlist: &Netlist, solver: &mut Solver, pins: &PinBinding) -> IncrementalEncoder {
        let inputs: Vec<Lit> = match &pins.inputs {
            Some(lits) => {
                assert_eq!(lits.len(), netlist.num_inputs(), "primary input pin width");
                lits.clone()
            }
            None => (0..netlist.num_inputs())
                .map(|_| Lit::positive(solver.new_var()))
                .collect(),
        };
        let keys: Vec<Lit> = match &pins.keys {
            Some(lits) => {
                assert_eq!(lits.len(), netlist.num_key_inputs(), "key input pin width");
                lits.clone()
            }
            None => (0..netlist.num_key_inputs())
                .map(|_| Lit::positive(solver.new_var()))
                .collect(),
        };
        let mut node_lits: Vec<Option<Lit>> = vec![None; netlist.num_nodes()];
        for (pos, &id) in netlist.inputs().iter().enumerate() {
            node_lits[id.index()] = Some(inputs[pos]);
        }
        for (pos, &id) in netlist.key_inputs().iter().enumerate() {
            node_lits[id.index()] = Some(keys[pos]);
        }
        IncrementalEncoder {
            node_lits,
            inputs,
            keys,
            const_false: None,
        }
    }

    /// Literals of the primary inputs, in declaration order.
    pub fn inputs(&self) -> &[Lit] {
        &self.inputs
    }

    /// Literals of the key inputs, in declaration order.
    pub fn keys(&self) -> &[Lit] {
        &self.keys
    }

    /// The literal of a node, if its cone has been encoded.
    pub fn lit(&self, node: NodeId) -> Option<Lit> {
        self.node_lits[node.index()]
    }

    /// Ensures the transitive fanin cone of `root` is encoded and returns the
    /// root's literal.  Nodes already encoded by earlier calls are reused.
    ///
    /// The emitted defining clauses always live at the solver root, even when
    /// a default frame ([`sat::Solver::set_default_frame`]) is active: the
    /// encoder memoizes literals across calls and hands them out long after
    /// any frame-scoped caller has retired its frame, so scoping the
    /// definitions to a retireable frame would leave cached literals dangling
    /// once the frame's clauses are reclaimed.  This is what keeps the
    /// encoder's variable space reusable across predicate generations.
    pub fn encode_cone(&mut self, netlist: &Netlist, solver: &mut Solver, root: NodeId) -> Lit {
        if let Some(lit) = self.node_lits[root.index()] {
            return lit;
        }
        let caller_frame = solver.default_frame();
        solver.set_default_frame(None);
        // Collect the not-yet-encoded part of the cone; node ids are
        // topologically ordered (fanins precede gates), so encoding the
        // missing nodes in ascending index order is a valid schedule.
        let mut missing: Vec<usize> = Vec::new();
        let mut stack: Vec<NodeId> = vec![root];
        let mut seen = vec![false; netlist.num_nodes()];
        seen[root.index()] = true;
        while let Some(id) = stack.pop() {
            missing.push(id.index());
            for &f in netlist.node(id).fanins() {
                if !seen[f.index()] && self.node_lits[f.index()].is_none() {
                    seen[f.index()] = true;
                    stack.push(f);
                }
            }
        }
        missing.sort_unstable();

        for index in missing {
            let (id, node) = (
                NodeId::from_index(index),
                netlist.node(NodeId::from_index(index)),
            );
            let NodeKind::Gate { kind, fanins } = node.kind() else {
                continue;
            };
            let fanin_lits: Vec<Lit> = fanins
                .iter()
                .map(|f| self.node_lits[f.index()].expect("fanins are topologically earlier"))
                .collect();
            let lit = encode_gate(solver, *kind, &fanin_lits, &mut self.const_false);
            self.node_lits[id.index()] = Some(lit);
        }
        solver.set_default_frame(caller_frame);
        self.node_lits[root.index()].expect("root was just encoded")
    }

    /// Ensures every declared output is encoded and returns their literals in
    /// declaration order.
    pub fn encode_outputs(&mut self, netlist: &Netlist, solver: &mut Solver) -> Vec<Lit> {
        netlist
            .outputs()
            .iter()
            .map(|&(_, id)| self.encode_cone(netlist, solver, id))
            .collect()
    }

    /// Converts the encoder into a [`CircuitEncoding`] snapshot.
    ///
    /// Outputs whose cones were never encoded are skipped, mirroring
    /// [`encode_cones`].
    pub fn into_encoding(self, netlist: &Netlist) -> CircuitEncoding {
        let outputs: Vec<Lit> = netlist
            .outputs()
            .iter()
            .filter_map(|&(_, id)| self.node_lits[id.index()])
            .collect();
        CircuitEncoding {
            node_lits: self.node_lits,
            inputs: self.inputs,
            keys: self.keys,
            outputs,
        }
    }
}

/// A wire value in a partially-constant encoding: either a known constant or
/// a solver literal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Signal {
    /// The value is determined by the fixed inputs alone.
    Const(bool),
    /// The value depends on key inputs through this literal.
    Lit(Lit),
}

impl Signal {
    /// Negation.
    #[must_use]
    pub fn invert(self) -> Signal {
        match self {
            Signal::Const(b) => Signal::Const(!b),
            Signal::Lit(l) => Signal::Lit(!l),
        }
    }
}

/// The key-dependent part of a netlist, precomputed once and reused across
/// many [`encode_key_cone`] calls.
///
/// A node is *key-dependent* if a key input lies in its transitive fanin.
/// Everything outside this cone is a pure function of the primary inputs, so
/// when the inputs are fixed to constants its value can be read off a single
/// simulator pass instead of being re-derived by constant folding over the
/// whole netlist.  The cone is typically a small fraction of the circuit (the
/// locking logic), which is what makes the per-iteration work of the DIP loop
/// proportional to the lock, not the design.
#[derive(Clone, Debug)]
pub struct KeyCone {
    /// `in_cone[NodeId::index]` — is the node key-dependent?
    in_cone: Vec<bool>,
    /// Indices of the key-dependent *gate* nodes, in topological order.
    gates: Vec<usize>,
    /// Output positions whose node is key-dependent.
    key_dependent_outputs: Vec<usize>,
}

impl KeyCone {
    /// Computes the key-dependent node set in one topological sweep.
    pub fn of(netlist: &Netlist) -> KeyCone {
        let mut in_cone = vec![false; netlist.num_nodes()];
        for &id in netlist.key_inputs() {
            in_cone[id.index()] = true;
        }
        let mut gates = Vec::new();
        for (id, node) in netlist.iter() {
            if let NodeKind::Gate { fanins, .. } = node.kind() {
                if fanins.iter().any(|f| in_cone[f.index()]) {
                    in_cone[id.index()] = true;
                    gates.push(id.index());
                }
            }
        }
        let key_dependent_outputs = netlist
            .outputs()
            .iter()
            .enumerate()
            .filter(|&(_, &(_, id))| in_cone[id.index()])
            .map(|(pos, _)| pos)
            .collect();
        KeyCone {
            in_cone,
            gates,
            key_dependent_outputs,
        }
    }

    /// Returns `true` if `node` is key-dependent.
    pub fn contains(&self, node: NodeId) -> bool {
        self.in_cone[node.index()]
    }

    /// Number of key-dependent gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Output positions (declaration order) whose value depends on the key.
    pub fn key_dependent_outputs(&self) -> &[usize] {
        &self.key_dependent_outputs
    }
}

/// Cone-scoped variant of [`encode_with_fixed_inputs`]: encodes only the
/// precomputed key-dependent cone, reading every key-free wire from
/// `node_values` (a full simulation of the netlist under the fixed inputs,
/// e.g. [`crate::Netlist::node_values`] with arbitrary key bits — key-free
/// nodes do not observe them).
///
/// Produces exactly the same output [`Signal`]s as the full constant-folding
/// walk, but touches `O(|key cone|)` nodes instead of `O(|netlist|)`.
///
/// Unlike [`IncrementalEncoder::encode_cone`], this encoder memoizes nothing
/// across calls, so its clauses *do* respect an active default frame
/// ([`sat::Solver::set_default_frame`]): an attack session routes a predicate
/// generation's I/O-pair encodings into a retireable frame this way, and the
/// whole encoding — Tseitin definitions included — is reclaimed when the
/// generation retires.  The Tseitin *variables* come back too: variables
/// allocated while a default frame is active are tagged to the frame, and
/// retiring it releases them into the solver's recycling free list
/// ([`sat::Solver::release_var`]), so unbounded sequences of frame-scoped
/// cone encodings reuse one generation's worth of variables.
///
/// # Panics
///
/// Panics if `keys` or `node_values` have the wrong width.
pub fn encode_key_cone(
    netlist: &Netlist,
    solver: &mut Solver,
    cone: &KeyCone,
    node_values: &[bool],
    keys: &[Lit],
) -> Vec<Signal> {
    assert_eq!(keys.len(), netlist.num_key_inputs(), "key width");
    assert_eq!(
        node_values.len(),
        netlist.num_nodes(),
        "node-value vector width"
    );

    let mut cone_signals: Vec<Option<Signal>> = vec![None; netlist.num_nodes()];
    for (pos, &id) in netlist.key_inputs().iter().enumerate() {
        cone_signals[id.index()] = Some(Signal::Lit(keys[pos]));
    }
    for &index in &cone.gates {
        let node = netlist.node(NodeId::from_index(index));
        let NodeKind::Gate { kind, fanins } = node.kind() else {
            unreachable!("KeyCone::gates only holds gate nodes");
        };
        let fanin_signals: Vec<Signal> = fanins
            .iter()
            .map(|f| match cone_signals[f.index()] {
                Some(signal) => signal,
                None => Signal::Const(node_values[f.index()]),
            })
            .collect();
        cone_signals[index] = Some(encode_gate_signals(solver, *kind, &fanin_signals));
    }

    netlist
        .outputs()
        .iter()
        .map(|&(_, id)| match cone_signals[id.index()] {
            Some(signal) => signal,
            None => Signal::Const(node_values[id.index()]),
        })
        .collect()
}

/// Encodes the circuit relation with the primary inputs fixed to constants
/// and the key inputs bound to existing literals.
///
/// Constant values are propagated during encoding, so gates that do not
/// depend on a key input produce **no clauses at all**; only the key cone is
/// encoded.  This is what makes the DIP loop of the incremental SAT attack
/// cheap: each observed I/O pair `C(x̂, K, ŷ)` adds clauses proportional to
/// the key-dependent logic only.
///
/// [`encode_key_cone`] is the faster path used by long-running sessions: it
/// walks a precomputed key-dependent cone instead of the whole netlist.
/// Like it, this encoder respects an active default frame (see there), so
/// per-generation constraints can be routed into a retireable frame.
///
/// Returns one [`Signal`] per declared output, in declaration order.
///
/// # Panics
///
/// Panics if `input_values` or `keys` have the wrong width.
pub fn encode_with_fixed_inputs(
    netlist: &Netlist,
    solver: &mut Solver,
    input_values: &[bool],
    keys: &[Lit],
) -> Vec<Signal> {
    assert_eq!(input_values.len(), netlist.num_inputs(), "input width");
    assert_eq!(keys.len(), netlist.num_key_inputs(), "key width");

    let mut signals: Vec<Option<Signal>> = vec![None; netlist.num_nodes()];
    for (pos, &id) in netlist.inputs().iter().enumerate() {
        signals[id.index()] = Some(Signal::Const(input_values[pos]));
    }
    for (pos, &id) in netlist.key_inputs().iter().enumerate() {
        signals[id.index()] = Some(Signal::Lit(keys[pos]));
    }

    for (id, node) in netlist.iter() {
        let NodeKind::Gate { kind, fanins } = node.kind() else {
            continue;
        };
        let fanin_signals: Vec<Signal> = fanins
            .iter()
            .map(|f| signals[f.index()].expect("fanins are topologically earlier"))
            .collect();
        signals[id.index()] = Some(encode_gate_signals(solver, *kind, &fanin_signals));
    }

    netlist
        .outputs()
        .iter()
        .map(|&(_, id)| signals[id.index()].expect("outputs are encoded"))
        .collect()
}

/// Encodes one gate over constant-or-literal fanins with constant folding.
fn encode_gate_signals(solver: &mut Solver, kind: GateKind, fanins: &[Signal]) -> Signal {
    let and_of = |solver: &mut Solver, signals: &[Signal]| -> Signal {
        if signals.contains(&Signal::Const(false)) {
            return Signal::Const(false);
        }
        let lits: Vec<Lit> = signals
            .iter()
            .filter_map(|s| match s {
                Signal::Lit(l) => Some(*l),
                Signal::Const(_) => None,
            })
            .collect();
        match lits.as_slice() {
            [] => Signal::Const(true),
            [only] => Signal::Lit(*only),
            _ => Signal::Lit(encode_and(solver, &lits)),
        }
    };
    let xor_of = |solver: &mut Solver, signals: &[Signal]| -> Signal {
        let mut parity = false;
        let mut lits: Vec<Lit> = Vec::new();
        for s in signals {
            match s {
                Signal::Const(b) => parity ^= b,
                Signal::Lit(l) => lits.push(*l),
            }
        }
        let base = match lits.as_slice() {
            [] => return Signal::Const(parity),
            [only] => *only,
            _ => encode_xor(solver, &lits),
        };
        Signal::Lit(if parity { !base } else { base })
    };
    let inverted =
        |signals: &[Signal]| -> Vec<Signal> { signals.iter().map(|s| s.invert()).collect() };

    match kind {
        GateKind::Const0 => Signal::Const(false),
        GateKind::Const1 => Signal::Const(true),
        GateKind::Buf => fanins[0],
        GateKind::Not => fanins[0].invert(),
        GateKind::And => and_of(solver, fanins),
        GateKind::Nand => and_of(solver, fanins).invert(),
        GateKind::Or => and_of(solver, &inverted(fanins)).invert(),
        GateKind::Nor => and_of(solver, &inverted(fanins)),
        GateKind::Xor => xor_of(solver, fanins),
        GateKind::Xnor => xor_of(solver, fanins).invert(),
    }
}

fn false_lit(solver: &mut Solver, cache: &mut Option<Lit>) -> Lit {
    *cache.get_or_insert_with(|| {
        let lit = Lit::positive(solver.new_var());
        solver.add_clause([!lit]);
        lit
    })
}

fn encode_gate(
    solver: &mut Solver,
    kind: GateKind,
    fanins: &[Lit],
    const_false: &mut Option<Lit>,
) -> Lit {
    match kind {
        GateKind::Const0 => false_lit(solver, const_false),
        GateKind::Const1 => !false_lit(solver, const_false),
        GateKind::Buf => fanins[0],
        GateKind::Not => !fanins[0],
        GateKind::And => encode_and(solver, fanins),
        GateKind::Nand => !encode_and(solver, fanins),
        GateKind::Or => !encode_and(solver, &fanins.iter().map(|&l| !l).collect::<Vec<_>>()),
        GateKind::Nor => encode_and(solver, &fanins.iter().map(|&l| !l).collect::<Vec<_>>()),
        GateKind::Xor => encode_xor(solver, fanins),
        GateKind::Xnor => !encode_xor(solver, fanins),
    }
}

/// Encodes `y = AND(fanins)` and returns `y`.
fn encode_and(solver: &mut Solver, fanins: &[Lit]) -> Lit {
    let y = Lit::positive(solver.new_var());
    let mut long_clause: Vec<Lit> = Vec::with_capacity(fanins.len() + 1);
    for &f in fanins {
        solver.add_clause([!y, f]);
        long_clause.push(!f);
    }
    long_clause.push(y);
    solver.add_clause(long_clause);
    y
}

/// Encodes the parity of `fanins` with a chain of two-input XORs.
fn encode_xor(solver: &mut Solver, fanins: &[Lit]) -> Lit {
    let mut acc = fanins[0];
    for &f in &fanins[1..] {
        acc = encode_xor2(solver, acc, f);
    }
    acc
}

fn encode_xor2(solver: &mut Solver, a: Lit, b: Lit) -> Lit {
    let y = Lit::positive(solver.new_var());
    solver.add_clause([!a, !b, !y]);
    solver.add_clause([a, b, !y]);
    solver.add_clause([a, !b, y]);
    solver.add_clause([!a, b, y]);
    y
}

/// Adds clauses forcing `lit` to equal the constant `value`.
pub fn assert_lit_equals(solver: &mut Solver, lit: Lit, value: bool) {
    solver.add_clause([if value { lit } else { !lit }]);
}

/// Adds clauses forcing two literal vectors to be pairwise equal.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn assert_equal(solver: &mut Solver, a: &[Lit], b: &[Lit]) {
    assert_eq!(a.len(), b.len(), "vector widths differ");
    for (&x, &y) in a.iter().zip(b) {
        solver.add_clause([!x, y]);
        solver.add_clause([x, !y]);
    }
}

/// Creates a literal that is true iff the two literal vectors differ in at
/// least one position (a miter over multiple outputs).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn encode_any_difference(solver: &mut Solver, a: &[Lit], b: &[Lit]) -> Lit {
    assert_eq!(a.len(), b.len(), "vector widths differ");
    let diffs: Vec<Lit> = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| encode_xor2(solver, x, y))
        .collect();
    // OR of all difference bits.
    !encode_and(solver, &diffs.iter().map(|&d| !d).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::pattern_to_bits;
    use sat::SolveResult;

    fn check_encoding_matches_simulation(nl: &Netlist) {
        let width = nl.num_inputs() + nl.num_key_inputs();
        assert!(width <= 12, "exhaustive check only for small circuits");
        for pattern in 0..(1u64 << width) {
            let bits = pattern_to_bits(pattern, width);
            let (ins, keys) = bits.split_at(nl.num_inputs());
            let expected = nl.evaluate(ins, keys);

            let mut solver = Solver::new();
            let enc = encode(nl, &mut solver, &PinBinding::default());
            for (i, &lit) in enc.inputs.iter().enumerate() {
                assert_lit_equals(&mut solver, lit, ins[i]);
            }
            for (i, &lit) in enc.keys.iter().enumerate() {
                assert_lit_equals(&mut solver, lit, keys[i]);
            }
            assert_eq!(solver.solve(), SolveResult::Sat);
            let got: Vec<bool> = enc
                .outputs
                .iter()
                .map(|&l| solver.value(l).expect("assigned"))
                .collect();
            assert_eq!(got, expected, "pattern {pattern:b}");
        }
    }

    #[test]
    fn all_gate_kinds_encode_correctly() {
        let mut nl = Netlist::new("gates");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let and = nl.add_gate("and", GateKind::And, &[a, b, c]);
        let nand = nl.add_gate("nand", GateKind::Nand, &[a, b]);
        let or = nl.add_gate("or", GateKind::Or, &[a, b, c]);
        let nor = nl.add_gate("nor", GateKind::Nor, &[a, c]);
        let xor = nl.add_gate("xor", GateKind::Xor, &[a, b, c]);
        let xnor = nl.add_gate("xnor", GateKind::Xnor, &[b, c]);
        let not = nl.add_gate("not", GateKind::Not, &[xor]);
        let buf = nl.add_gate("buf", GateKind::Buf, &[nand]);
        let c0 = nl.add_gate("c0", GateKind::Const0, &[]);
        let c1 = nl.add_gate("c1", GateKind::Const1, &[]);
        let mix = nl.add_gate("mix", GateKind::Or, &[c0, c1, not, buf]);
        for (name, id) in [
            ("o_and", and),
            ("o_nand", nand),
            ("o_or", or),
            ("o_nor", nor),
            ("o_xor", xor),
            ("o_xnor", xnor),
            ("o_mix", mix),
        ] {
            nl.add_output(name, id);
        }
        check_encoding_matches_simulation(&nl);
    }

    #[test]
    fn keyed_circuit_encoding() {
        let mut nl = Netlist::new("keyed");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let k = nl.add_key_input("k0");
        let x = nl.add_gate("x", GateKind::Xor, &[a, k]);
        let y = nl.add_gate("y", GateKind::And, &[x, b]);
        nl.add_output("y", y);
        check_encoding_matches_simulation(&nl);
    }

    #[test]
    fn pinned_inputs_are_shared_between_copies() {
        // Encode the same circuit twice sharing inputs but with distinct keys;
        // forcing the two outputs to differ must force the keys to differ.
        let mut nl = Netlist::new("shared");
        let a = nl.add_input("a");
        let k = nl.add_key_input("k0");
        let y = nl.add_gate("y", GateKind::Xor, &[a, k]);
        nl.add_output("y", y);

        let mut solver = Solver::new();
        let first = encode(&nl, &mut solver, &PinBinding::default());
        let second = encode(
            &nl,
            &mut solver,
            &PinBinding {
                inputs: Some(first.inputs.clone()),
                keys: None,
            },
        );
        let diff = encode_any_difference(&mut solver, &first.outputs, &second.outputs);
        solver.add_clause([diff]);
        assert_eq!(solver.solve(), SolveResult::Sat);
        let k1 = solver.value(first.keys[0]).unwrap();
        let k2 = solver.value(second.keys[0]).unwrap();
        assert_ne!(k1, k2);
    }

    #[test]
    fn assert_equal_forces_equality() {
        let mut solver = Solver::new();
        let a = Lit::positive(solver.new_var());
        let b = Lit::positive(solver.new_var());
        assert_equal(&mut solver, &[a], &[b]);
        solver.add_clause([a]);
        assert_eq!(solver.solve(), SolveResult::Sat);
        assert_eq!(solver.value(b), Some(true));
    }

    #[test]
    fn incremental_encoder_memoizes_overlapping_cones() {
        // g1 and g2 share the cone of g0; encoding g2 after g1 must not
        // allocate new variables for the shared part.
        let mut nl = Netlist::new("memo");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g0 = nl.add_gate("g0", GateKind::Xor, &[a, b]);
        let g1 = nl.add_gate("g1", GateKind::And, &[g0, c]);
        let g2 = nl.add_gate("g2", GateKind::Or, &[g0, c]);
        nl.add_output("g1", g1);
        nl.add_output("g2", g2);

        let mut solver = Solver::new();
        let mut enc = IncrementalEncoder::new(&nl, &mut solver, &PinBinding::default());
        let l1 = enc.encode_cone(&nl, &mut solver, g1);
        let vars_after_first = solver.num_vars();
        let shared = enc.lit(g0).expect("g0 encoded as part of g1's cone");
        let l2 = enc.encode_cone(&nl, &mut solver, g2);
        // Encoding g2 adds only the OR gate itself on top of the shared cone.
        assert_eq!(solver.num_vars(), vars_after_first + 1);
        assert_eq!(enc.lit(g0), Some(shared), "memoized literal is stable");
        // Re-encoding is free and returns the same literals.
        let before = solver.num_clauses();
        assert_eq!(enc.encode_cone(&nl, &mut solver, g1), l1);
        assert_eq!(enc.encode_cone(&nl, &mut solver, g2), l2);
        assert_eq!(solver.num_clauses(), before);

        // The shared encoding is still functionally correct.
        for pattern in 0..8u64 {
            let bits = pattern_to_bits(pattern, 3);
            let expected = nl.evaluate(&bits, &[]);
            let assumptions: Vec<Lit> = enc
                .inputs()
                .iter()
                .zip(&bits)
                .map(|(&l, &v)| if v { l } else { !l })
                .collect();
            assert_eq!(solver.solve_with(&assumptions), SolveResult::Sat);
            assert_eq!(solver.value(l1), Some(expected[0]), "pattern {pattern:03b}");
            assert_eq!(solver.value(l2), Some(expected[1]), "pattern {pattern:03b}");
        }
    }

    #[test]
    fn incremental_encoder_matches_batch_encoding() {
        let mut nl = Netlist::new("same");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let k = nl.add_key_input("k");
        let x = nl.add_gate("x", GateKind::Xor, &[a, k]);
        let y = nl.add_gate("y", GateKind::Nand, &[x, b]);
        nl.add_output("y", y);

        let mut solver = Solver::new();
        let mut enc = IncrementalEncoder::new(&nl, &mut solver, &PinBinding::default());
        let outputs = enc.encode_outputs(&nl, &mut solver);
        assert_eq!(outputs.len(), 1);
        let snapshot = enc.into_encoding(&nl);
        assert_eq!(snapshot.outputs, outputs);
        assert_eq!(snapshot.inputs.len(), 2);
        assert_eq!(snapshot.keys.len(), 1);
    }

    #[test]
    fn fixed_input_encoding_folds_key_free_logic_to_constants() {
        let mut nl = Netlist::new("fold");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate("g", GateKind::And, &[a, b]);
        let h = nl.add_gate("h", GateKind::Xor, &[g, a]);
        nl.add_output("h", h);

        let mut solver = Solver::new();
        for pattern in 0..4u64 {
            let bits = pattern_to_bits(pattern, 2);
            let clauses_before = solver.num_clauses();
            let vars_before = solver.num_vars();
            let outs = encode_with_fixed_inputs(&nl, &mut solver, &bits, &[]);
            // Key-free circuits fold entirely: no clauses, no variables.
            assert_eq!(solver.num_clauses(), clauses_before);
            assert_eq!(solver.num_vars(), vars_before);
            assert_eq!(outs, vec![Signal::Const(nl.evaluate(&bits, &[])[0])]);
        }
    }

    #[test]
    fn fixed_input_encoding_matches_simulation_on_keyed_circuits() {
        let mut nl = Netlist::new("keyed_fold");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let k0 = nl.add_key_input("k0");
        let k1 = nl.add_key_input("k1");
        let x = nl.add_gate("x", GateKind::Xor, &[a, k0]);
        let y = nl.add_gate("y", GateKind::Nand, &[x, b, k1]);
        let z = nl.add_gate("z", GateKind::Nor, &[y, a]);
        let w = nl.add_gate("w", GateKind::Xnor, &[z, k0, b]);
        nl.add_output("z", z);
        nl.add_output("w", w);

        for input_pattern in 0..4u64 {
            for key_pattern in 0..4u64 {
                let input_bits = pattern_to_bits(input_pattern, 2);
                let key_bits = pattern_to_bits(key_pattern, 2);
                let expected = nl.evaluate(&input_bits, &key_bits);

                let mut solver = Solver::new();
                let keys: Vec<Lit> = (0..2).map(|_| Lit::positive(solver.new_var())).collect();
                let outs = encode_with_fixed_inputs(&nl, &mut solver, &input_bits, &keys);
                let assumptions: Vec<Lit> = keys
                    .iter()
                    .zip(&key_bits)
                    .map(|(&l, &v)| if v { l } else { !l })
                    .collect();
                assert_eq!(solver.solve_with(&assumptions), SolveResult::Sat);
                for (out, &want) in outs.iter().zip(&expected) {
                    let got = match out {
                        Signal::Const(c) => *c,
                        Signal::Lit(l) => solver.value(*l).expect("assigned"),
                    };
                    assert_eq!(
                        got, want,
                        "inputs {input_pattern:02b} keys {key_pattern:02b}"
                    );
                }
            }
        }
    }

    #[test]
    fn key_cone_identifies_key_dependent_nodes() {
        let mut nl = Netlist::new("cone_id");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let k = nl.add_key_input("k");
        let free = nl.add_gate("free", GateKind::And, &[a, b]);
        let keyed = nl.add_gate("keyed", GateKind::Xor, &[free, k]);
        let deep = nl.add_gate("deep", GateKind::Or, &[keyed, a]);
        nl.add_output("free", free);
        nl.add_output("deep", deep);

        let cone = KeyCone::of(&nl);
        assert!(!cone.contains(a) && !cone.contains(free));
        assert!(cone.contains(k) && cone.contains(keyed) && cone.contains(deep));
        assert_eq!(cone.num_gates(), 2);
        assert_eq!(cone.key_dependent_outputs(), &[1]);
    }

    #[test]
    fn key_cone_encoding_matches_full_constant_folding() {
        // Differential check on a mixed circuit: the cone-scoped encoder must
        // produce signals with the same semantics as the whole-netlist fold,
        // for every input pattern and key value.
        let mut nl = Netlist::new("cone_diff");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let k0 = nl.add_key_input("k0");
        let k1 = nl.add_key_input("k1");
        let f1 = nl.add_gate("f1", GateKind::And, &[a, b]);
        let f2 = nl.add_gate("f2", GateKind::Xor, &[f1, c]);
        let g1 = nl.add_gate("g1", GateKind::Xor, &[f2, k0]);
        let g2 = nl.add_gate("g2", GateKind::Nand, &[g1, k1, b]);
        let g3 = nl.add_gate("g3", GateKind::Nor, &[g2, f1]);
        nl.add_output("f2", f2);
        nl.add_output("g3", g3);

        let cone = KeyCone::of(&nl);
        for input_pattern in 0..8u64 {
            let input_bits = pattern_to_bits(input_pattern, 3);
            let node_values = nl.node_values(&input_bits, &[false, false]).expect("sim");
            for key_pattern in 0..4u64 {
                let key_bits = pattern_to_bits(key_pattern, 2);
                let expected = nl.evaluate(&input_bits, &key_bits);

                let mut solver = Solver::new();
                let keys: Vec<Lit> = (0..2).map(|_| Lit::positive(solver.new_var())).collect();
                let outs = encode_key_cone(&nl, &mut solver, &cone, &node_values, &keys);
                let assumptions: Vec<Lit> = keys
                    .iter()
                    .zip(&key_bits)
                    .map(|(&l, &v)| if v { l } else { !l })
                    .collect();
                assert_eq!(solver.solve_with(&assumptions), SolveResult::Sat);
                for (out, &want) in outs.iter().zip(&expected) {
                    let got = match out {
                        Signal::Const(v) => *v,
                        Signal::Lit(l) => solver.value(*l).expect("assigned"),
                    };
                    assert_eq!(
                        got, want,
                        "inputs {input_pattern:03b} keys {key_pattern:02b}"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_encoder_pins_memoized_encodings_to_the_root() {
        // A caller routing clauses into a retireable frame (the predicate
        // generation of an attack session) must not capture the encoder's
        // memoized definitions: those are handed out again after the frame is
        // retired, so they have to survive frame reclamation.
        let mut nl = Netlist::new("root_pin");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate("g", GateKind::And, &[a, b]);
        let c1 = nl.add_gate("c1", GateKind::Const1, &[]);
        let h = nl.add_gate("h", GateKind::Xor, &[g, c1]);
        nl.add_output("h", h);

        let mut solver = Solver::new();
        let mut enc = IncrementalEncoder::new(&nl, &mut solver, &PinBinding::default());
        let frame = solver.push_frame();
        solver.set_default_frame(Some(frame));
        let lit = enc.encode_cone(&nl, &mut solver, h);
        // The default frame is restored for the caller...
        assert_eq!(solver.default_frame(), Some(frame));
        solver.set_default_frame(None);
        // ...and the encoding stays correct after the frame is retired and
        // its clauses reclaimed.
        solver.retire_frame(frame);
        solver.simplify();
        for pattern in 0..4u64 {
            let bits = pattern_to_bits(pattern, 2);
            let expected = nl.evaluate(&bits, &[])[0];
            let assumptions: Vec<Lit> = enc
                .inputs()
                .iter()
                .zip(&bits)
                .map(|(&l, &v)| if v { l } else { !l })
                .collect();
            assert_eq!(solver.solve_with(&assumptions), SolveResult::Sat);
            assert_eq!(solver.value(lit), Some(expected), "pattern {pattern:02b}");
        }
    }

    #[test]
    fn key_cone_encoding_respects_the_default_frame() {
        // Frame-routed I/O-pair encodings must vanish with their frame: the
        // same key literal can be forced to opposite values in two different
        // generations without ever contradicting itself.
        let mut nl = Netlist::new("framed_io");
        let a = nl.add_input("a");
        let k = nl.add_key_input("k");
        let y = nl.add_gate("y", GateKind::Xor, &[a, k]);
        nl.add_output("y", y);
        let cone = KeyCone::of(&nl);

        let mut solver = Solver::new();
        let key = Lit::positive(solver.new_var());
        let node_values = nl.node_values(&[true], &[false]).expect("sim");

        let forced_under = |solver: &mut Solver, want: bool| {
            let frame = solver.push_frame();
            solver.set_default_frame(Some(frame));
            let outs = encode_key_cone(&nl, solver, &cone, &node_values, &[key]);
            let Signal::Lit(out) = outs[0] else {
                panic!("output depends on the key");
            };
            solver.add_clause([if want { out } else { !out }]);
            solver.set_default_frame(None);
            frame
        };
        // Generation 1 claims y(a=1) == 1, i.e. k == 0.
        let f1 = forced_under(&mut solver, true);
        assert_eq!(solver.solve_in(&[f1], &[]), SolveResult::Sat);
        assert_eq!(solver.value(key), Some(false));
        solver.retire_frame(f1);
        solver.simplify();
        // Generation 2 claims the opposite; without frame scoping the two
        // would conjoin into Unsat.
        let f2 = forced_under(&mut solver, false);
        assert_eq!(solver.solve_in(&[f2], &[]), SolveResult::Sat);
        assert_eq!(solver.value(key), Some(true));
    }

    #[test]
    fn framed_key_cone_encodings_recycle_their_tseitin_variables() {
        // The bounded-memory contract of the attack session's DIP loop: the
        // Tseitin variables of a frame-routed key-cone encoding are released
        // when the frame retires, so repeated generations hold the solver's
        // variable count flat instead of growing by one cone per generation.
        let mut nl = Netlist::new("recycle");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let k0 = nl.add_key_input("k0");
        let k1 = nl.add_key_input("k1");
        let x = nl.add_gate("x", GateKind::Xor, &[a, k0]);
        let y = nl.add_gate("y", GateKind::Nand, &[x, b, k1]);
        let z = nl.add_gate("z", GateKind::Xnor, &[y, k0]);
        nl.add_output("z", z);
        let cone = KeyCone::of(&nl);

        let mut solver = Solver::new();
        let keys: Vec<Lit> = (0..2).map(|_| Lit::positive(solver.new_var())).collect();
        let node_values = nl
            .node_values(&[true, false], &[false, false])
            .expect("sim");

        let mut steady_state_vars = None;
        for generation in 0..5 {
            let frame = solver.push_frame();
            solver.set_default_frame(Some(frame));
            let outs = encode_key_cone(&nl, &mut solver, &cone, &node_values, &keys);
            let Signal::Lit(out) = outs[0] else {
                panic!("output depends on the key");
            };
            solver.add_clause([out]);
            solver.set_default_frame(None);
            assert_eq!(
                solver.solve_in(&[frame], &[]),
                SolveResult::Sat,
                "generation {generation}"
            );
            solver.retire_frame(frame);
            solver.simplify();
            match steady_state_vars {
                None => steady_state_vars = Some(solver.num_vars()),
                Some(expected) => assert_eq!(
                    solver.num_vars(),
                    expected,
                    "generation {generation}: later generations reuse the \
                     recycled variables of the first"
                ),
            }
        }
        assert!(
            solver.free_var_count() > 0,
            "retired encodings leave variables in the free list"
        );
    }

    #[test]
    fn signal_inversion() {
        assert_eq!(Signal::Const(true).invert(), Signal::Const(false));
        let mut solver = Solver::new();
        let l = Lit::positive(solver.new_var());
        assert_eq!(Signal::Lit(l).invert(), Signal::Lit(!l));
    }

    #[test]
    fn cone_encoding_skips_unrelated_logic() {
        let mut nl = Netlist::new("cones");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate("g1", GateKind::And, &[a, b]);
        let g2 = nl.add_gate("g2", GateKind::Or, &[a, b]);
        nl.add_output("g1", g1);
        nl.add_output("g2", g2);
        let mut solver = Solver::new();
        let enc = encode_cones(&nl, &mut solver, &[g1], &PinBinding::default());
        assert!(enc.node_lits[g1.index()].is_some());
        assert!(enc.node_lits[g2.index()].is_none());
    }
}
