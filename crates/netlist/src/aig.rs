//! And-Inverter Graphs (AIGs) with structural hashing.
//!
//! The AIG is the representation ABC uses internally; converting a locked
//! netlist to an AIG and back (see [`crate::strash`]) decomposes XOR/XNOR
//! gates into AND/NOT structures, merges structurally identical nodes and
//! propagates constants — exactly the kind of optimisation that makes the
//! locking structure non-obvious (Figure 3 of the paper).

use std::collections::HashMap;

use crate::{GateKind, Netlist, NodeId, NodeKind};

/// A literal in the AIG: an AIG node index plus a complement flag.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AigLit(u32);

impl AigLit {
    fn new(node: usize, complement: bool) -> AigLit {
        AigLit(((node as u32) << 1) | u32::from(complement))
    }

    /// The AIG node this literal refers to.
    pub fn node(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the literal is complemented.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the complemented literal.
    pub fn complement(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

/// A node of the AIG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AigNode {
    /// The constant-false node (always node 0).
    ConstFalse,
    /// A primary or key input.
    Input {
        /// Signal name.
        name: String,
        /// True if this is a key input.
        is_key: bool,
    },
    /// A two-input AND over literals.
    And(AigLit, AigLit),
}

/// An And-Inverter Graph with structural hashing and constant propagation.
///
/// # Example
///
/// ```
/// use netlist::aig::Aig;
///
/// let mut aig = Aig::new("demo");
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let y = aig.xor(a, b);
/// aig.add_output("y", y);
/// assert_eq!(aig.evaluate(&[true, false], &[]), vec![true]);
/// assert_eq!(aig.evaluate(&[true, true], &[]), vec![false]);
/// ```
#[derive(Clone, Debug)]
pub struct Aig {
    name: String,
    nodes: Vec<AigNode>,
    inputs: Vec<usize>,
    key_inputs: Vec<usize>,
    outputs: Vec<(String, AigLit)>,
    strash: HashMap<(AigLit, AigLit), usize>,
}

impl Aig {
    /// Creates an empty AIG containing only the constant node.
    pub fn new(name: impl Into<String>) -> Aig {
        Aig {
            name: name.into(),
            nodes: vec![AigNode::ConstFalse],
            inputs: Vec::new(),
            key_inputs: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The constant-false literal.
    pub fn const_false(&self) -> AigLit {
        AigLit::new(0, false)
    }

    /// The constant-true literal.
    pub fn const_true(&self) -> AigLit {
        AigLit::new(0, true)
    }

    /// Number of AND nodes.
    pub fn num_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, AigNode::And(..)))
            .count()
    }

    /// Number of nodes of any kind (constant, inputs, ANDs).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The outputs as `(name, literal)` pairs.
    pub fn outputs(&self) -> &[(String, AigLit)] {
        &self.outputs
    }

    /// Adds a primary input and returns its positive literal.
    pub fn add_input(&mut self, name: impl Into<String>) -> AigLit {
        let idx = self.nodes.len();
        self.nodes.push(AigNode::Input {
            name: name.into(),
            is_key: false,
        });
        self.inputs.push(idx);
        AigLit::new(idx, false)
    }

    /// Adds a key input and returns its positive literal.
    pub fn add_key_input(&mut self, name: impl Into<String>) -> AigLit {
        let idx = self.nodes.len();
        self.nodes.push(AigNode::Input {
            name: name.into(),
            is_key: true,
        });
        self.key_inputs.push(idx);
        AigLit::new(idx, false)
    }

    /// Declares an output.
    pub fn add_output(&mut self, name: impl Into<String>, lit: AigLit) {
        self.outputs.push((name.into(), lit));
    }

    /// Structural-hashed AND of two literals with standard simplifications.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Constant and trivial cases.
        if a == self.const_false() || b == self.const_false() || a == b.complement() {
            return self.const_false();
        }
        if a == self.const_true() {
            return b;
        }
        if b == self.const_true() || a == b {
            return a;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&existing) = self.strash.get(&key) {
            return AigLit::new(existing, false);
        }
        let idx = self.nodes.len();
        self.nodes.push(AigNode::And(key.0, key.1));
        self.strash.insert(key, idx);
        AigLit::new(idx, false)
    }

    /// Negation (free: just flips the complement bit).
    pub fn not(&self, a: AigLit) -> AigLit {
        a.complement()
    }

    /// OR built from AND and complement edges.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.and(a.complement(), b.complement()).complement()
    }

    /// XOR built from two ANDs.
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let t0 = self.and(a, b.complement());
        let t1 = self.and(a.complement(), b);
        self.or(t0, t1)
    }

    /// XNOR.
    pub fn xnor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.xor(a, b).complement()
    }

    /// If-then-else (multiplexer): `sel ? then_lit : else_lit`.
    pub fn mux(&mut self, sel: AigLit, then_lit: AigLit, else_lit: AigLit) -> AigLit {
        let t = self.and(sel, then_lit);
        let e = self.and(sel.complement(), else_lit);
        self.or(t, e)
    }

    /// N-ary AND.
    pub fn and_all<I: IntoIterator<Item = AigLit>>(&mut self, lits: I) -> AigLit {
        let mut acc = self.const_true();
        for lit in lits {
            acc = self.and(acc, lit);
        }
        acc
    }

    /// N-ary OR.
    pub fn or_all<I: IntoIterator<Item = AigLit>>(&mut self, lits: I) -> AigLit {
        let mut acc = self.const_false();
        for lit in lits {
            acc = self.or(acc, lit);
        }
        acc
    }

    /// Evaluates all outputs for one input pattern.
    ///
    /// # Panics
    ///
    /// Panics if the stimulus widths do not match the input counts.
    pub fn evaluate(&self, inputs: &[bool], keys: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.inputs.len(), "primary input width");
        assert_eq!(keys.len(), self.key_inputs.len(), "key input width");
        let mut values = vec![false; self.nodes.len()];
        for (pos, &idx) in self.inputs.iter().enumerate() {
            values[idx] = inputs[pos];
        }
        for (pos, &idx) in self.key_inputs.iter().enumerate() {
            values[idx] = keys[pos];
        }
        for (idx, node) in self.nodes.iter().enumerate() {
            if let AigNode::And(a, b) = node {
                let av = values[a.node()] ^ a.is_complemented();
                let bv = values[b.node()] ^ b.is_complemented();
                values[idx] = av && bv;
            }
        }
        self.outputs
            .iter()
            .map(|&(_, lit)| values[lit.node()] ^ lit.is_complemented())
            .collect()
    }

    /// Converts a gate-level netlist into an AIG, decomposing all gates into
    /// AND/NOT structure with structural hashing.
    pub fn from_netlist(netlist: &Netlist) -> Aig {
        let mut aig = Aig::new(netlist.name());
        let mut map: Vec<AigLit> = vec![aig.const_false(); netlist.num_nodes()];
        for &id in netlist.inputs() {
            map[id.index()] = aig.add_input(netlist.node(id).name());
        }
        for &id in netlist.key_inputs() {
            map[id.index()] = aig.add_key_input(netlist.node(id).name());
        }
        for (id, node) in netlist.iter() {
            if let NodeKind::Gate { kind, fanins } = node.kind() {
                let lits: Vec<AigLit> = fanins.iter().map(|f| map[f.index()]).collect();
                map[id.index()] = aig.build_gate(*kind, &lits);
            }
        }
        for (name, id) in netlist.outputs() {
            aig.add_output(name.clone(), map[id.index()]);
        }
        aig
    }

    fn build_gate(&mut self, kind: GateKind, lits: &[AigLit]) -> AigLit {
        match kind {
            GateKind::Const0 => self.const_false(),
            GateKind::Const1 => self.const_true(),
            GateKind::Buf => lits[0],
            GateKind::Not => lits[0].complement(),
            GateKind::And => self.and_all(lits.iter().copied()),
            GateKind::Nand => self.and_all(lits.iter().copied()).complement(),
            GateKind::Or => self.or_all(lits.iter().copied()),
            GateKind::Nor => self.or_all(lits.iter().copied()).complement(),
            GateKind::Xor | GateKind::Xnor => {
                let mut acc = self.const_false();
                for &l in lits {
                    acc = self.xor(acc, l);
                }
                if kind == GateKind::Xnor {
                    acc.complement()
                } else {
                    acc
                }
            }
        }
    }

    /// Converts the AIG back into a gate-level netlist of AND and NOT gates.
    ///
    /// Input and output names are preserved; internal nodes get generated
    /// names.  Only nodes reachable from an output are emitted.
    pub fn to_netlist(&self) -> Netlist {
        let mut nl = Netlist::new(self.name.clone());
        let mut node_map: HashMap<usize, NodeId> = HashMap::new();
        for &idx in &self.inputs {
            if let AigNode::Input { name, .. } = &self.nodes[idx] {
                node_map.insert(idx, nl.add_input(name.clone()));
            }
        }
        for &idx in &self.key_inputs {
            if let AigNode::Input { name, .. } = &self.nodes[idx] {
                node_map.insert(idx, nl.add_key_input(name.clone()));
            }
        }

        // Mark nodes reachable from outputs.
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = self.outputs.iter().map(|(_, l)| l.node()).collect();
        while let Some(idx) = stack.pop() {
            if reachable[idx] {
                continue;
            }
            reachable[idx] = true;
            if let AigNode::And(a, b) = &self.nodes[idx] {
                stack.push(a.node());
                stack.push(b.node());
            }
        }

        let mut const0: Option<NodeId> = None;
        let mut not_cache: HashMap<NodeId, NodeId> = HashMap::new();

        // Helper to materialise a literal as a netlist node.
        fn lit_to_node(
            lit: AigLit,
            nl: &mut Netlist,
            node_map: &HashMap<usize, NodeId>,
            not_cache: &mut HashMap<NodeId, NodeId>,
            const0: &mut Option<NodeId>,
        ) -> NodeId {
            let base = if lit.node() == 0 {
                *const0.get_or_insert_with(|| {
                    let name = nl.fresh_name("_const0_");
                    nl.add_gate(name, GateKind::Const0, &[])
                })
            } else {
                node_map[&lit.node()]
            };
            if lit.is_complemented() {
                *not_cache.entry(base).or_insert_with(|| {
                    let name = nl.fresh_name("_inv_");
                    nl.add_gate(name, GateKind::Not, &[base])
                })
            } else {
                base
            }
        }

        for (idx, node) in self.nodes.iter().enumerate() {
            if !reachable[idx] {
                continue;
            }
            if let AigNode::And(a, b) = node {
                let fa = lit_to_node(*a, &mut nl, &node_map, &mut not_cache, &mut const0);
                let fb = lit_to_node(*b, &mut nl, &node_map, &mut not_cache, &mut const0);
                let name = nl.fresh_name("_and_");
                let id = nl.add_gate(name, GateKind::And, &[fa, fb]);
                node_map.insert(idx, id);
            }
        }

        for (name, lit) in &self.outputs {
            let id = lit_to_node(*lit, &mut nl, &node_map, &mut not_cache, &mut const0);
            nl.add_output(name.clone(), id);
        }
        nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::pattern_to_bits;

    #[test]
    fn structural_hashing_merges_duplicates() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        let y = aig.and(b, a);
        assert_eq!(x, y);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn simplification_rules() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let t = aig.const_true();
        let f = aig.const_false();
        assert_eq!(aig.and(a, t), a);
        assert_eq!(aig.and(a, f), f);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, a.complement()), f);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn xor_and_mux_semantics() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let x = aig.xor(a, b);
        let m = aig.mux(a, b, c);
        aig.add_output("xor", x);
        aig.add_output("mux", m);
        for pattern in 0..8u64 {
            let bits = pattern_to_bits(pattern, 3);
            let outs = aig.evaluate(&bits, &[]);
            assert_eq!(outs[0], bits[0] ^ bits[1]);
            assert_eq!(outs[1], if bits[0] { bits[1] } else { bits[2] });
        }
    }

    #[test]
    fn netlist_round_trip_preserves_function() {
        let mut nl = Netlist::new("rt");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let k = nl.add_key_input("k0");
        let g1 = nl.add_gate("g1", GateKind::Nand, &[a, b]);
        let g2 = nl.add_gate("g2", GateKind::Xor, &[g1, c]);
        let g3 = nl.add_gate("g3", GateKind::Xnor, &[g2, k]);
        let g4 = nl.add_gate("g4", GateKind::Nor, &[g3, a]);
        nl.add_output("y0", g3);
        nl.add_output("y1", g4);

        let aig = Aig::from_netlist(&nl);
        let back = aig.to_netlist();
        assert_eq!(back.num_inputs(), 3);
        assert_eq!(back.num_key_inputs(), 1);
        assert_eq!(back.num_outputs(), 2);
        for pattern in 0..16u64 {
            let bits = pattern_to_bits(pattern, 4);
            let (ins, keys) = bits.split_at(3);
            assert_eq!(
                nl.evaluate(ins, keys),
                back.evaluate(ins, keys),
                "pattern {pattern:04b}"
            );
        }
    }

    #[test]
    fn constant_outputs_survive_round_trip() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let na = nl.add_gate("na", GateKind::Not, &[a]);
        let z = nl.add_gate("z", GateKind::And, &[a, na]);
        nl.add_output("z", z);
        let back = Aig::from_netlist(&nl).to_netlist();
        assert_eq!(back.evaluate(&[false], &[]), vec![false]);
        assert_eq!(back.evaluate(&[true], &[]), vec![false]);
    }

    #[test]
    fn from_netlist_counts_are_smaller_after_sharing() {
        // Two structurally identical XORs collapse to one set of AND nodes.
        let mut nl = Netlist::new("dup");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x1 = nl.add_gate("x1", GateKind::Xor, &[a, b]);
        let x2 = nl.add_gate("x2", GateKind::Xor, &[a, b]);
        let o = nl.add_gate("o", GateKind::And, &[x1, x2]);
        nl.add_output("o", o);
        let aig = Aig::from_netlist(&nl);
        // One XOR costs 3 ANDs; the duplicate is hashed away and o = x & x = x.
        assert_eq!(aig.num_ands(), 3);
    }
}
