//! Support sets and transitive fanin cones.

use std::collections::BTreeSet;

use crate::{Netlist, NodeId};

/// The support of a node: the set of input nodes (primary and key) that can
/// influence its value, split by category.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SupportSet {
    /// Primary (circuit) inputs in the support.
    pub primary: BTreeSet<NodeId>,
    /// Key inputs in the support.
    pub keys: BTreeSet<NodeId>,
}

impl SupportSet {
    /// Total number of inputs in the support.
    pub fn len(&self) -> usize {
        self.primary.len() + self.keys.len()
    }

    /// Returns `true` if the support is empty (constant node).
    pub fn is_empty(&self) -> bool {
        self.primary.is_empty() && self.keys.is_empty()
    }

    /// Returns all support inputs (primary then key) as a sorted vector.
    pub fn all(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.primary.iter().copied().collect();
        v.extend(self.keys.iter().copied());
        v.sort_unstable();
        v
    }
}

/// Computes the set of all nodes in the transitive fanin cone of `node`
/// (including `node` itself), in topological order.
pub fn transitive_fanin(netlist: &Netlist, node: NodeId) -> Vec<NodeId> {
    let mut in_cone = vec![false; netlist.num_nodes()];
    let mut stack = vec![node];
    in_cone[node.index()] = true;
    while let Some(current) = stack.pop() {
        for &fanin in netlist.node(current).fanins() {
            if !in_cone[fanin.index()] {
                in_cone[fanin.index()] = true;
                stack.push(fanin);
            }
        }
    }
    (0..netlist.num_nodes())
        .filter(|&i| in_cone[i])
        .map(NodeId::from_index)
        .collect()
}

/// Computes the support of `node`: the primary and key inputs it transitively
/// depends on.
pub fn support(netlist: &Netlist, node: NodeId) -> SupportSet {
    let mut result = SupportSet::default();
    for id in transitive_fanin(netlist, node) {
        let n = netlist.node(id);
        if n.is_key_input() {
            result.keys.insert(id);
        } else if n.is_input() {
            result.primary.insert(id);
        }
    }
    result
}

/// Maps primary-input node ids to their positions in the declaration order
/// (the index into pin vectors such as [`crate::cnf::CircuitEncoding::inputs`]).
///
/// # Panics
///
/// Panics if an id is not a primary input of the netlist.
pub fn input_positions(netlist: &Netlist, ids: &[NodeId]) -> Vec<usize> {
    ids.iter()
        .map(|&id| netlist.input_position(id).expect("id is a primary input"))
        .collect()
}

/// Computes the supports of *all* nodes in one topological sweep and returns,
/// for each node, a compact signature: the sorted list of input node ids.
///
/// This is much faster than calling [`support`] per node when scanning a
/// whole netlist (as comparator identification and support-set matching do).
pub fn support_signature(netlist: &Netlist) -> Vec<BTreeSet<NodeId>> {
    let mut supports: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); netlist.num_nodes()];
    for (id, node) in netlist.iter() {
        if node.is_input() {
            supports[id.index()].insert(id);
        } else {
            let mut s = BTreeSet::new();
            for &fanin in node.fanins() {
                s.extend(supports[fanin.index()].iter().copied());
            }
            supports[id.index()] = s;
        }
    }
    supports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    fn sample() -> (Netlist, NodeId, NodeId, NodeId, NodeId) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let k = nl.add_key_input("k0");
        let g1 = nl.add_gate("g1", GateKind::And, &[a, b]);
        let g2 = nl.add_gate("g2", GateKind::Xor, &[g1, k]);
        nl.add_output("g2", g2);
        (nl, a, b, k, g2)
    }

    #[test]
    fn support_splits_keys_and_primaries() {
        let (nl, a, b, k, g2) = sample();
        let s = support(&nl, g2);
        assert_eq!(s.primary, [a, b].into_iter().collect());
        assert_eq!(s.keys, [k].into_iter().collect());
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn transitive_fanin_is_topological_and_complete() {
        let (nl, a, b, k, g2) = sample();
        let cone = transitive_fanin(&nl, g2);
        assert!(cone.contains(&a));
        assert!(cone.contains(&b));
        assert!(cone.contains(&k));
        assert!(cone.contains(&g2));
        for window in cone.windows(2) {
            assert!(window[0] < window[1]);
        }
    }

    #[test]
    fn input_support_is_itself() {
        let (nl, a, _, _, _) = sample();
        let s = support(&nl, a);
        assert_eq!(s.primary, [a].into_iter().collect());
        assert!(s.keys.is_empty());
    }

    #[test]
    fn bulk_signatures_match_per_node_support() {
        let (nl, _, _, _, _) = sample();
        let sigs = support_signature(&nl);
        for (id, _) in nl.iter() {
            let s = support(&nl, id);
            let expected: BTreeSet<NodeId> =
                s.primary.iter().chain(s.keys.iter()).copied().collect();
            assert_eq!(sigs[id.index()], expected, "node {id:?}");
        }
    }
}
