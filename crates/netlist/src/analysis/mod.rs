//! Structural analyses over netlists: support sets, transitive fanin cones,
//! logic levels and size statistics.

mod levels;
mod support;

pub use levels::{logic_levels, max_level, NetlistStats};
pub use support::{input_positions, support, support_signature, transitive_fanin, SupportSet};
