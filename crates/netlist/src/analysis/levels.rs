//! Logic levels and aggregate statistics.

use crate::{GateKind, Netlist, NodeKind};
use std::collections::HashMap;

/// Computes the logic level of every node: inputs are level 0, every gate is
/// one more than its deepest fanin.
pub fn logic_levels(netlist: &Netlist) -> Vec<u32> {
    let mut levels = vec![0u32; netlist.num_nodes()];
    for (id, node) in netlist.iter() {
        if let NodeKind::Gate { fanins, .. } = node.kind() {
            levels[id.index()] = fanins
                .iter()
                .map(|f| levels[f.index()] + 1)
                .max()
                .unwrap_or(0);
        }
    }
    levels
}

/// Returns the depth of the circuit: the maximum logic level over all outputs.
pub fn max_level(netlist: &Netlist) -> u32 {
    let levels = logic_levels(netlist);
    netlist
        .outputs()
        .iter()
        .map(|&(_, id)| levels[id.index()])
        .max()
        .unwrap_or(0)
}

/// Aggregate size statistics of a netlist, in the shape reported by Table I
/// of the paper.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetlistStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of key inputs.
    pub key_inputs: usize,
    /// Number of outputs.
    pub outputs: usize,
    /// Number of gates.
    pub gates: usize,
    /// Circuit depth (maximum logic level of an output).
    pub depth: u32,
    /// Gate count per gate kind.
    pub gates_by_kind: Vec<(GateKind, usize)>,
}

impl NetlistStats {
    /// Gathers statistics for a netlist.
    pub fn of(netlist: &Netlist) -> NetlistStats {
        let mut by_kind: HashMap<GateKind, usize> = HashMap::new();
        for (_, node) in netlist.iter() {
            if let Some(kind) = node.gate_kind() {
                *by_kind.entry(kind).or_default() += 1;
            }
        }
        let mut gates_by_kind: Vec<(GateKind, usize)> = by_kind.into_iter().collect();
        gates_by_kind.sort_by_key(|(k, _)| format!("{k}"));
        NetlistStats {
            inputs: netlist.num_inputs(),
            key_inputs: netlist.num_key_inputs(),
            outputs: netlist.num_outputs(),
            gates: netlist.num_gates(),
            depth: max_level(netlist),
            gates_by_kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    #[test]
    fn levels_and_depth() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate("g1", GateKind::And, &[a, b]);
        let g2 = nl.add_gate("g2", GateKind::Not, &[g1]);
        let g3 = nl.add_gate("g3", GateKind::Or, &[g2, a]);
        nl.add_output("g3", g3);
        let levels = logic_levels(&nl);
        assert_eq!(levels[a.index()], 0);
        assert_eq!(levels[g1.index()], 1);
        assert_eq!(levels[g2.index()], 2);
        assert_eq!(levels[g3.index()], 3);
        assert_eq!(max_level(&nl), 3);
    }

    #[test]
    fn stats_counts_by_kind() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate("g1", GateKind::And, &[a, b]);
        let g2 = nl.add_gate("g2", GateKind::And, &[g1, b]);
        let g3 = nl.add_gate("g3", GateKind::Xor, &[g2, a]);
        nl.add_output("g3", g3);
        let stats = NetlistStats::of(&nl);
        assert_eq!(stats.gates, 3);
        assert_eq!(stats.inputs, 2);
        assert_eq!(stats.depth, 3);
        let and_count = stats
            .gates_by_kind
            .iter()
            .find(|(k, _)| *k == GateKind::And)
            .map(|(_, c)| *c);
        assert_eq!(and_count, Some(2));
    }

    #[test]
    fn empty_netlist_has_zero_depth() {
        let nl = Netlist::new("empty");
        assert_eq!(max_level(&nl), 0);
        let stats = NetlistStats::of(&nl);
        assert_eq!(stats.gates, 0);
    }
}
