//! Reading and writing ISCAS `.bench` netlists.
//!
//! The `.bench` format is the lingua franca of the logic-locking literature:
//! `INPUT(x)` / `OUTPUT(y)` declarations followed by `sig = GATE(a, b, ...)`
//! assignments.  Locked benchmarks conventionally name key inputs with a
//! `keyinput` prefix; [`ParseOptions::key_prefix`] controls how such inputs
//! are classified.

use std::collections::HashMap;

use crate::{GateKind, Netlist, NetlistError, NodeId};

/// Options controlling `.bench` parsing.
#[derive(Clone, Debug)]
pub struct ParseOptions {
    /// Inputs whose name starts with this prefix (case-insensitive) are
    /// treated as key inputs.  Default: `"keyinput"`.
    pub key_prefix: String,
}

impl Default for ParseOptions {
    fn default() -> ParseOptions {
        ParseOptions {
            key_prefix: "keyinput".to_string(),
        }
    }
}

/// Parses a `.bench` document with default [`ParseOptions`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines and
/// [`NetlistError::UnknownSignal`] for references to undefined signals.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
/// let nl = netlist::bench_format::parse(text)?;
/// assert_eq!(nl.num_inputs(), 2);
/// assert_eq!(nl.evaluate(&[true, true], &[]), vec![true]);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str) -> Result<Netlist, NetlistError> {
    parse_with(text, &ParseOptions::default())
}

/// Parses a `.bench` document with explicit options.
///
/// # Errors
///
/// See [`parse`].
pub fn parse_with(text: &str, options: &ParseOptions) -> Result<Netlist, NetlistError> {
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut defs: HashMap<String, (GateKind, Vec<String>)> = HashMap::new();
    let mut def_order: Vec<String> = Vec::new();
    let mut design_name = "bench".to_string();

    for (line_no, raw) in text.lines().enumerate() {
        let line_no = line_no + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = strip_directive(line, "INPUT") {
            inputs.push(rest.to_string());
        } else if let Some(rest) = strip_directive(line, "OUTPUT") {
            outputs.push(rest.to_string());
        } else if let Some(name) = line.strip_prefix(".model") {
            design_name = name.trim().to_string();
        } else if let Some(eq_pos) = line.find('=') {
            let target = line[..eq_pos].trim().to_string();
            let rhs = line[eq_pos + 1..].trim();
            let open = rhs.find('(').ok_or_else(|| NetlistError::Parse {
                line: line_no,
                message: format!("expected GATE(...) on right-hand side, got `{rhs}`"),
            })?;
            let close = rhs.rfind(')').ok_or_else(|| NetlistError::Parse {
                line: line_no,
                message: "missing closing parenthesis".to_string(),
            })?;
            let gate_name = rhs[..open].trim();
            let kind = GateKind::from_bench_name(gate_name).ok_or_else(|| NetlistError::Parse {
                line: line_no,
                message: format!("unknown gate `{gate_name}`"),
            })?;
            let args: Vec<String> = rhs[open + 1..close]
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            if !kind.arity_ok(args.len()) {
                return Err(NetlistError::Parse {
                    line: line_no,
                    message: format!("gate {kind} cannot take {} fanins", args.len()),
                });
            }
            if defs.insert(target.clone(), (kind, args)).is_some() {
                return Err(NetlistError::DuplicateName(target));
            }
            def_order.push(target);
        } else {
            return Err(NetlistError::Parse {
                line: line_no,
                message: format!("unrecognised line `{line}`"),
            });
        }
    }

    let mut nl = Netlist::new(design_name);
    let prefix = options.key_prefix.to_ascii_lowercase();
    for name in &inputs {
        if name.to_ascii_lowercase().starts_with(&prefix) {
            nl.add_key_input(name.clone());
        } else {
            nl.add_input(name.clone());
        }
    }

    // Create gates in dependency order (the .bench format allows forward
    // references) via an iterative DFS.
    let mut created: HashMap<String, NodeId> = inputs
        .iter()
        .map(|n| (n.clone(), nl.lookup(n).expect("just added")))
        .collect();
    for root in &def_order {
        if created.contains_key(root) {
            continue;
        }
        // Stack of (signal, next fanin index to process).
        let mut stack: Vec<(String, usize)> = vec![(root.clone(), 0)];
        let mut on_stack: Vec<String> = vec![root.clone()];
        while let Some((signal, fanin_idx)) = stack.pop() {
            let (kind, args) = defs
                .get(&signal)
                .ok_or_else(|| NetlistError::UnknownSignal(signal.clone()))?
                .clone();
            if fanin_idx < args.len() {
                let dep = &args[fanin_idx];
                stack.push((signal.clone(), fanin_idx + 1));
                if !created.contains_key(dep) {
                    if !defs.contains_key(dep) {
                        return Err(NetlistError::UnknownSignal(dep.clone()));
                    }
                    if on_stack.contains(dep) {
                        return Err(NetlistError::Parse {
                            line: 0,
                            message: format!("combinational cycle through `{dep}`"),
                        });
                    }
                    on_stack.push(dep.clone());
                    stack.push((dep.clone(), 0));
                }
            } else {
                let fanins: Vec<NodeId> = args.iter().map(|a| created[a]).collect();
                let id = nl.add_gate(signal.clone(), kind, &fanins);
                created.insert(signal.clone(), id);
                on_stack.retain(|s| s != &signal);
            }
        }
    }

    for name in &outputs {
        let id = created
            .get(name)
            .copied()
            .ok_or_else(|| NetlistError::UnknownSignal(name.clone()))?;
        nl.add_output(name.clone(), id);
    }
    Ok(nl)
}

fn strip_directive<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let upper = line.to_ascii_uppercase();
    if !upper.starts_with(keyword) {
        return None;
    }
    let rest = line[keyword.len()..].trim();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.strip_suffix(')')?;
    Some(rest.trim())
}

/// Serialises a netlist in `.bench` format.
///
/// Key inputs are written as ordinary `INPUT` declarations (their names carry
/// the key-input convention), so the output can be consumed by standard
/// logic-locking tooling.
pub fn write(nl: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", nl.summary()));
    for &id in nl.inputs() {
        out.push_str(&format!("INPUT({})\n", nl.node(id).name()));
    }
    for &id in nl.key_inputs() {
        out.push_str(&format!("INPUT({})\n", nl.node(id).name()));
    }
    for (name, _) in nl.outputs() {
        out.push_str(&format!("OUTPUT({name})\n"));
    }
    let mut aliases: Vec<(String, NodeId)> = Vec::new();
    for (id, node) in nl.iter() {
        if let crate::NodeKind::Gate { kind, fanins } = node.kind() {
            let args: Vec<&str> = fanins.iter().map(|f| nl.node(*f).name()).collect();
            out.push_str(&format!(
                "{} = {}({})\n",
                node.name(),
                kind,
                args.join(", ")
            ));
        }
        let _ = id;
    }
    // Outputs whose name differs from their driver need a BUF alias.
    for (name, id) in nl.outputs() {
        if nl.node(*id).name() != name && nl.lookup(name).is_none() {
            aliases.push((name.clone(), *id));
        }
    }
    for (name, id) in aliases {
        out.push_str(&format!("{} = BUF({})\n", name, nl.node(id).name()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17_LIKE: &str = "\
# a small example
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    #[test]
    fn parse_c17() {
        let nl = parse(C17_LIKE).expect("parse");
        assert_eq!(nl.num_inputs(), 5);
        assert_eq!(nl.num_outputs(), 2);
        assert_eq!(nl.num_gates(), 6);
        // All-zero input: every first-level NAND is 1, so both outputs are 0.
        let outs = nl.evaluate(&[false; 5], &[]);
        assert_eq!(outs, vec![false, false]);
    }

    #[test]
    fn forward_references_are_resolved() {
        let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(t, b)\nt = NOT(a)\n";
        let nl = parse(text).expect("parse");
        assert_eq!(nl.evaluate(&[false, true], &[]), vec![true]);
        assert_eq!(nl.evaluate(&[true, true], &[]), vec![false]);
    }

    #[test]
    fn key_inputs_are_classified() {
        let text = "INPUT(a)\nINPUT(keyinput0)\nOUTPUT(y)\ny = XOR(a, keyinput0)\n";
        let nl = parse(text).expect("parse");
        assert_eq!(nl.num_inputs(), 1);
        assert_eq!(nl.num_key_inputs(), 1);
    }

    #[test]
    fn round_trip_preserves_function() {
        let nl = parse(C17_LIKE).expect("parse");
        let text = write(&nl);
        let reparsed = parse(&text).expect("reparse");
        assert_eq!(reparsed.num_inputs(), nl.num_inputs());
        assert_eq!(reparsed.num_outputs(), nl.num_outputs());
        for pattern in 0..32u64 {
            let bits = crate::sim::pattern_to_bits(pattern, 5);
            assert_eq!(nl.evaluate(&bits, &[]), reparsed.evaluate(&bits, &[]));
        }
    }

    #[test]
    fn unknown_signal_is_an_error() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
        assert!(matches!(parse(text), Err(NetlistError::UnknownSignal(_))));
    }

    #[test]
    fn unknown_gate_is_an_error() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n";
        assert!(matches!(parse(text), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn cycle_is_rejected() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = NOT(y)\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# hello\nINPUT(a)  # trailing comment\nOUTPUT(a)\n";
        let nl = parse(text).expect("parse");
        assert_eq!(nl.num_inputs(), 1);
        assert_eq!(nl.num_outputs(), 1);
    }
}
