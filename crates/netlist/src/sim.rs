//! Single-pattern and 64-way parallel simulation.

use crate::{Netlist, NetlistError, NodeId, NodeKind};

impl Netlist {
    /// Evaluates the circuit for a single input pattern.
    ///
    /// `inputs[i]` is the value of the `i`-th primary input and `keys[i]` the
    /// value of the `i`-th key input (both in declaration order).  Returns the
    /// output values in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if the stimulus widths do not match the circuit.  Use
    /// [`Netlist::try_evaluate`] for a fallible version.
    pub fn evaluate(&self, inputs: &[bool], keys: &[bool]) -> Vec<bool> {
        self.try_evaluate(inputs, keys)
            .expect("stimulus width mismatch")
    }

    /// Fallible version of [`Netlist::evaluate`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::StimulusWidth`] if the stimulus widths do not
    /// match the number of primary or key inputs.
    pub fn try_evaluate(&self, inputs: &[bool], keys: &[bool]) -> Result<Vec<bool>, NetlistError> {
        let values = self.node_values(inputs, keys)?;
        Ok(self
            .outputs()
            .iter()
            .map(|&(_, id)| values[id.index()])
            .collect())
    }

    /// Evaluates the circuit and returns the value of *every* node, indexed by
    /// [`NodeId::index`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::StimulusWidth`] if the stimulus widths do not
    /// match the number of primary or key inputs.
    pub fn node_values(&self, inputs: &[bool], keys: &[bool]) -> Result<Vec<bool>, NetlistError> {
        if inputs.len() != self.num_inputs() {
            return Err(NetlistError::StimulusWidth {
                expected: self.num_inputs(),
                got: inputs.len(),
            });
        }
        if keys.len() != self.num_key_inputs() {
            return Err(NetlistError::StimulusWidth {
                expected: self.num_key_inputs(),
                got: keys.len(),
            });
        }
        let mut values = vec![false; self.num_nodes()];
        for (pos, &id) in self.inputs().iter().enumerate() {
            values[id.index()] = inputs[pos];
        }
        for (pos, &id) in self.key_inputs().iter().enumerate() {
            values[id.index()] = keys[pos];
        }
        let mut fanin_values: Vec<bool> = Vec::with_capacity(8);
        for (id, node) in self.iter() {
            if let NodeKind::Gate { kind, fanins } = node.kind() {
                fanin_values.clear();
                fanin_values.extend(fanins.iter().map(|f| values[f.index()]));
                values[id.index()] = kind.evaluate(&fanin_values);
            }
        }
        Ok(values)
    }

    /// Evaluates 64 input patterns at once (one pattern per bit position).
    ///
    /// `inputs[i]` / `keys[i]` hold the 64 values of the `i`-th primary / key
    /// input.  Returns one word per output.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::StimulusWidth`] if the stimulus widths do not
    /// match the number of primary or key inputs.
    pub fn evaluate_words(&self, inputs: &[u64], keys: &[u64]) -> Result<Vec<u64>, NetlistError> {
        let values = self.node_words(inputs, keys)?;
        Ok(self
            .outputs()
            .iter()
            .map(|&(_, id)| values[id.index()])
            .collect())
    }

    /// 64-way parallel version of [`Netlist::node_values`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::StimulusWidth`] if the stimulus widths do not
    /// match the number of primary or key inputs.
    pub fn node_words(&self, inputs: &[u64], keys: &[u64]) -> Result<Vec<u64>, NetlistError> {
        if inputs.len() != self.num_inputs() {
            return Err(NetlistError::StimulusWidth {
                expected: self.num_inputs(),
                got: inputs.len(),
            });
        }
        if keys.len() != self.num_key_inputs() {
            return Err(NetlistError::StimulusWidth {
                expected: self.num_key_inputs(),
                got: keys.len(),
            });
        }
        let mut values = vec![0u64; self.num_nodes()];
        for (pos, &id) in self.inputs().iter().enumerate() {
            values[id.index()] = inputs[pos];
        }
        for (pos, &id) in self.key_inputs().iter().enumerate() {
            values[id.index()] = keys[pos];
        }
        let mut fanin_values: Vec<u64> = Vec::with_capacity(8);
        for (id, node) in self.iter() {
            if let NodeKind::Gate { kind, fanins } = node.kind() {
                fanin_values.clear();
                fanin_values.extend(fanins.iter().map(|f| values[f.index()]));
                values[id.index()] = kind.evaluate_words(&fanin_values);
            }
        }
        Ok(values)
    }

    /// Evaluates the function of a single node given values for (a superset
    /// of) its support.  Inputs not mentioned default to `false`.
    ///
    /// This is useful for exhaustively enumerating the local function of a
    /// node whose support is small (for example comparator identification).
    pub fn evaluate_node(&self, node: NodeId, input_values: &[(NodeId, bool)]) -> bool {
        let mut inputs = vec![false; self.num_inputs()];
        let mut keys = vec![false; self.num_key_inputs()];
        for &(id, value) in input_values {
            if let Some(pos) = self.inputs().iter().position(|&x| x == id) {
                inputs[pos] = value;
            } else if let Some(pos) = self.key_inputs().iter().position(|&x| x == id) {
                keys[pos] = value;
            }
        }
        let values = self
            .node_values(&inputs, &keys)
            .expect("widths are constructed to match");
        values[node.index()]
    }
}

/// Converts an integer pattern into a little-endian bit vector of width `n`.
///
/// Bit `i` of `pattern` becomes element `i` of the result.
pub fn pattern_to_bits(pattern: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| (pattern >> i) & 1 == 1).collect()
}

/// Converts a bit vector into an integer pattern (inverse of
/// [`pattern_to_bits`]).
pub fn bits_to_pattern(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    fn full_adder() -> Netlist {
        let mut nl = Netlist::new("fa");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cin = nl.add_input("cin");
        let s1 = nl.add_gate("s1", GateKind::Xor, &[a, b]);
        let sum = nl.add_gate("sum", GateKind::Xor, &[s1, cin]);
        let c1 = nl.add_gate("c1", GateKind::And, &[a, b]);
        let c2 = nl.add_gate("c2", GateKind::And, &[s1, cin]);
        let cout = nl.add_gate("cout", GateKind::Or, &[c1, c2]);
        nl.add_output("sum", sum);
        nl.add_output("cout", cout);
        nl
    }

    #[test]
    fn full_adder_truth_table() {
        let nl = full_adder();
        for pattern in 0..8u64 {
            let bits = pattern_to_bits(pattern, 3);
            let outs = nl.evaluate(&bits, &[]);
            let expected_sum = bits.iter().filter(|&&b| b).count();
            assert_eq!(outs[0], expected_sum % 2 == 1, "sum for {pattern:03b}");
            assert_eq!(outs[1], expected_sum >= 2, "cout for {pattern:03b}");
        }
    }

    #[test]
    fn word_simulation_matches_scalar() {
        let nl = full_adder();
        // Pack all 8 patterns into the low 8 bits of each word.
        let mut inputs = vec![0u64; 3];
        for pattern in 0..8u64 {
            for (i, word) in inputs.iter_mut().enumerate() {
                *word |= ((pattern >> i) & 1) << pattern;
            }
        }
        let outs = nl.evaluate_words(&inputs, &[]).expect("widths match");
        for pattern in 0..8u64 {
            let bits = pattern_to_bits(pattern, 3);
            let scalar = nl.evaluate(&bits, &[]);
            assert_eq!((outs[0] >> pattern) & 1 == 1, scalar[0]);
            assert_eq!((outs[1] >> pattern) & 1 == 1, scalar[1]);
        }
    }

    #[test]
    fn stimulus_width_is_checked() {
        let nl = full_adder();
        assert!(matches!(
            nl.try_evaluate(&[true], &[]),
            Err(NetlistError::StimulusWidth {
                expected: 3,
                got: 1
            })
        ));
        assert!(nl.evaluate_words(&[0, 0], &[]).is_err());
    }

    #[test]
    fn evaluate_node_uses_defaults() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate("g", GateKind::Or, &[a, b]);
        nl.add_output("g", g);
        assert!(!nl.evaluate_node(g, &[]));
        assert!(nl.evaluate_node(g, &[(a, true)]));
        assert!(nl.evaluate_node(g, &[(b, true)]));
    }

    #[test]
    fn pattern_round_trip() {
        for p in [0u64, 1, 5, 0b1011, 63] {
            assert_eq!(bits_to_pattern(&pattern_to_bits(p, 6)), p);
        }
    }

    #[test]
    fn key_inputs_participate() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let k = nl.add_key_input("k");
        let g = nl.add_gate("g", GateKind::Xor, &[a, k]);
        nl.add_output("g", g);
        assert_eq!(nl.evaluate(&[true], &[true]), vec![false]);
        assert_eq!(nl.evaluate(&[true], &[false]), vec![true]);
    }
}
