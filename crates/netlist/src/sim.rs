//! Single-pattern, 64-way, and wide multi-word parallel simulation.
//!
//! The workhorse is [`WideSim`]: a reusable, cache-blocked scratch buffer
//! that evaluates `W` 64-bit words (`W * 64` patterns) per sweep over the
//! netlist.  [`Netlist::node_words`] is the `W = 1` case expressed through
//! the same engine; [`Netlist::node_words_fresh`] preserves the original
//! allocate-per-call 64-way implementation as the throughput baseline for
//! the bench-smoke regression gate and the differential suite.

use crate::{GateKind, Netlist, NetlistError, NodeId, NodeKind};

/// Default number of 64-bit lanes per node in a [`WideSim`] block
/// (8 words = 512 patterns per sweep).
pub const DEFAULT_WIDE_WORDS: usize = 8;

/// A reusable, cache-blocked multi-word simulation pass.
///
/// The scratch holds one contiguous `Vec<u64>` of `num_nodes * width` words,
/// blocked node-major: the `width` lanes of node `n` occupy
/// `values[n * width .. (n + 1) * width]`, so a node's lanes stay adjacent
/// in cache while the sweep walks the netlist once.  Bit `b` of lane `l`
/// carries pattern number `l * 64 + b`.
///
/// Stimuli use the same layout per pin: the lanes of the `i`-th primary
/// input occupy `inputs[i * width .. (i + 1) * width]` (likewise for keys).
///
/// Gate evaluation is specialized by fanin count: constants fill, unary
/// gates copy or invert, two-input gates (the overwhelmingly common case)
/// apply the binary operation lane-by-lane straight from the two fanin
/// blocks, and wider gates fold fanins directly into the destination block
/// — no per-gate temporary buffer anywhere.
///
/// ```
/// use netlist::{GateKind, Netlist, WideSim};
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_gate("g", GateKind::And, &[a, b]);
/// nl.add_output("g", g);
///
/// let mut sim = WideSim::new(&nl, 2);
/// sim.run(&nl, &[!0, 0b1010, !0, 0b1100], &[]).unwrap();
/// assert_eq!(sim.node(g), &[!0, 0b1000]);
/// ```
#[derive(Clone, Debug)]
pub struct WideSim {
    width: usize,
    num_nodes: usize,
    values: Vec<u64>,
}

impl WideSim {
    /// Allocates a scratch buffer sized for `netlist` with `width` words
    /// (`width * 64` patterns) per node.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(netlist: &Netlist, width: usize) -> WideSim {
        assert!(width > 0, "wide simulation needs at least one word");
        WideSim {
            width,
            num_nodes: netlist.num_nodes(),
            values: vec![0u64; netlist.num_nodes() * width],
        }
    }

    /// Number of 64-bit words per node.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of patterns evaluated per [`WideSim::run`] sweep.
    pub fn patterns_per_sweep(&self) -> usize {
        self.width * 64
    }

    /// Simulates `width * 64` patterns in one sweep, leaving every node's
    /// lane block readable through [`WideSim::node`].
    ///
    /// `inputs` must hold `num_inputs * width` words and `keys`
    /// `num_key_inputs * width` words, blocked pin-major as described on
    /// [`WideSim`].  The scratch is reused across calls with no allocation.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::StimulusWidth`] if a stimulus block does not
    /// match the circuit; the expected count is in words (`pins * width`).
    ///
    /// # Panics
    ///
    /// Panics if `netlist` has a different node count than the one this
    /// scratch was allocated for.
    pub fn run(
        &mut self,
        netlist: &Netlist,
        inputs: &[u64],
        keys: &[u64],
    ) -> Result<(), NetlistError> {
        assert_eq!(
            netlist.num_nodes(),
            self.num_nodes,
            "netlist shape does not match the simulation scratch"
        );
        let w = self.width;
        if inputs.len() != netlist.num_inputs() * w {
            return Err(NetlistError::StimulusWidth {
                expected: netlist.num_inputs() * w,
                got: inputs.len(),
            });
        }
        if keys.len() != netlist.num_key_inputs() * w {
            return Err(NetlistError::StimulusWidth {
                expected: netlist.num_key_inputs() * w,
                got: keys.len(),
            });
        }
        for (pos, &id) in netlist.inputs().iter().enumerate() {
            self.values[id.index() * w..][..w].copy_from_slice(&inputs[pos * w..][..w]);
        }
        for (pos, &id) in netlist.key_inputs().iter().enumerate() {
            self.values[id.index() * w..][..w].copy_from_slice(&keys[pos * w..][..w]);
        }
        for (id, node) in netlist.iter() {
            let NodeKind::Gate { kind, fanins } = node.kind() else {
                continue;
            };
            // Fanins are topologically earlier, so their blocks all sit
            // strictly before the destination block.
            let (prior, rest) = self.values.split_at_mut(id.index() * w);
            let dst = &mut rest[..w];
            match fanins.len() {
                0 => dst.fill(if matches!(kind, GateKind::Const1) {
                    !0
                } else {
                    0
                }),
                1 => {
                    let src = &prior[fanins[0].index() * w..][..w];
                    if matches!(kind, GateKind::Not) {
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d = !s;
                        }
                    } else {
                        dst.copy_from_slice(src);
                    }
                }
                2 => {
                    let a = &prior[fanins[0].index() * w..][..w];
                    let b = &prior[fanins[1].index() * w..][..w];
                    apply2_words(*kind, dst, a, b);
                }
                _ => {
                    dst.copy_from_slice(&prior[fanins[0].index() * w..][..w]);
                    fold_words(*kind, dst, prior, &fanins[1..], w);
                    if kind.is_inverting() {
                        for d in dst.iter_mut() {
                            *d = !*d;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The lane block of a node after the last [`WideSim::run`].
    pub fn node(&self, id: NodeId) -> &[u64] {
        &self.values[id.index() * self.width..][..self.width]
    }

    /// Appends the lane blocks of every declared output (declaration order)
    /// to `out` — the gather step of the batched-oracle protocol.
    pub fn extend_with_outputs(&self, netlist: &Netlist, out: &mut Vec<u64>) {
        for (_, id) in netlist.outputs() {
            out.extend_from_slice(self.node(*id));
        }
    }

    /// Consumes the scratch and returns the raw node-major value buffer.
    pub fn into_values(self) -> Vec<u64> {
        self.values
    }
}

/// Lane-wise binary gate application for the two-fanin fast path.
#[inline]
fn apply2_words(kind: GateKind, dst: &mut [u64], a: &[u64], b: &[u64]) {
    macro_rules! lanes {
        ($op:expr) => {
            for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                *d = $op(x, y);
            }
        };
    }
    match kind {
        GateKind::And => lanes!(|x, y| x & y),
        GateKind::Nand => lanes!(|x: u64, y: u64| !(x & y)),
        GateKind::Or => lanes!(|x, y| x | y),
        GateKind::Nor => lanes!(|x: u64, y: u64| !(x | y)),
        GateKind::Xor => lanes!(|x, y| x ^ y),
        GateKind::Xnor => lanes!(|x: u64, y: u64| !(x ^ y)),
        _ => unreachable!("two-fanin gates are binary ops"),
    }
}

/// Folds the remaining fanins of a wide (3+ input) gate into `dst` using the
/// gate's base operation (negated kinds invert afterwards in the caller).
#[inline]
fn fold_words(kind: GateKind, dst: &mut [u64], prior: &[u64], rest: &[NodeId], w: usize) {
    macro_rules! fold {
        ($op:tt) => {
            for &f in rest {
                let src = &prior[f.index() * w..][..w];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d $op s;
                }
            }
        };
    }
    match kind {
        GateKind::And | GateKind::Nand => fold!(&=),
        GateKind::Or | GateKind::Nor => fold!(|=),
        GateKind::Xor | GateKind::Xnor => fold!(^=),
        _ => unreachable!("wide gates are AND/OR/XOR families"),
    }
}

/// Scalar binary gate application for the two-fanin fast path.
#[inline]
fn apply2_bool(kind: GateKind, a: bool, b: bool) -> bool {
    match kind {
        GateKind::And => a && b,
        GateKind::Nand => !(a && b),
        GateKind::Or => a || b,
        GateKind::Nor => !(a || b),
        GateKind::Xor => a ^ b,
        GateKind::Xnor => !(a ^ b),
        _ => unreachable!("two-fanin gates are binary ops"),
    }
}

impl Netlist {
    /// Evaluates the circuit for a single input pattern.
    ///
    /// `inputs[i]` is the value of the `i`-th primary input and `keys[i]` the
    /// value of the `i`-th key input (both in declaration order).  Returns the
    /// output values in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if the stimulus widths do not match the circuit.  Use
    /// [`Netlist::try_evaluate`] for a fallible version.
    pub fn evaluate(&self, inputs: &[bool], keys: &[bool]) -> Vec<bool> {
        self.try_evaluate(inputs, keys)
            .expect("stimulus width mismatch")
    }

    /// Fallible version of [`Netlist::evaluate`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::StimulusWidth`] if the stimulus widths do not
    /// match the number of primary or key inputs.
    pub fn try_evaluate(&self, inputs: &[bool], keys: &[bool]) -> Result<Vec<bool>, NetlistError> {
        let values = self.node_values(inputs, keys)?;
        Ok(self
            .outputs()
            .iter()
            .map(|&(_, id)| values[id.index()])
            .collect())
    }

    /// Evaluates the circuit and returns the value of *every* node, indexed by
    /// [`NodeId::index`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::StimulusWidth`] if the stimulus widths do not
    /// match the number of primary or key inputs.
    pub fn node_values(&self, inputs: &[bool], keys: &[bool]) -> Result<Vec<bool>, NetlistError> {
        if inputs.len() != self.num_inputs() {
            return Err(NetlistError::StimulusWidth {
                expected: self.num_inputs(),
                got: inputs.len(),
            });
        }
        if keys.len() != self.num_key_inputs() {
            return Err(NetlistError::StimulusWidth {
                expected: self.num_key_inputs(),
                got: keys.len(),
            });
        }
        let mut values = vec![false; self.num_nodes()];
        for (pos, &id) in self.inputs().iter().enumerate() {
            values[id.index()] = inputs[pos];
        }
        for (pos, &id) in self.key_inputs().iter().enumerate() {
            values[id.index()] = keys[pos];
        }
        for (id, node) in self.iter() {
            let NodeKind::Gate { kind, fanins } = node.kind() else {
                continue;
            };
            values[id.index()] = match fanins.len() {
                0 => matches!(kind, GateKind::Const1),
                1 => values[fanins[0].index()] ^ matches!(kind, GateKind::Not),
                2 => apply2_bool(*kind, values[fanins[0].index()], values[fanins[1].index()]),
                _ => {
                    let mut acc = values[fanins[0].index()];
                    match kind {
                        GateKind::And | GateKind::Nand => {
                            for &f in &fanins[1..] {
                                acc &= values[f.index()];
                            }
                        }
                        GateKind::Or | GateKind::Nor => {
                            for &f in &fanins[1..] {
                                acc |= values[f.index()];
                            }
                        }
                        GateKind::Xor | GateKind::Xnor => {
                            for &f in &fanins[1..] {
                                acc ^= values[f.index()];
                            }
                        }
                        _ => unreachable!("wide gates are AND/OR/XOR families"),
                    }
                    acc ^ kind.is_inverting()
                }
            };
        }
        Ok(values)
    }

    /// Evaluates 64 input patterns at once (one pattern per bit position).
    ///
    /// `inputs[i]` / `keys[i]` hold the 64 values of the `i`-th primary / key
    /// input.  Returns one word per output.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::StimulusWidth`] if the stimulus widths do not
    /// match the number of primary or key inputs.
    pub fn evaluate_words(&self, inputs: &[u64], keys: &[u64]) -> Result<Vec<u64>, NetlistError> {
        let values = self.node_words(inputs, keys)?;
        Ok(self
            .outputs()
            .iter()
            .map(|&(_, id)| values[id.index()])
            .collect())
    }

    /// 64-way parallel version of [`Netlist::node_values`].
    ///
    /// This is the `W = 1` case of [`WideSim`]: one engine evaluates both.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::StimulusWidth`] if the stimulus widths do not
    /// match the number of primary or key inputs.
    pub fn node_words(&self, inputs: &[u64], keys: &[u64]) -> Result<Vec<u64>, NetlistError> {
        let mut sim = WideSim::new(self, 1);
        sim.run(self, inputs, keys)?;
        Ok(sim.into_values())
    }

    /// The pre-`WideSim` 64-way simulation: allocates scratch per call and
    /// evaluates every gate through [`GateKind::evaluate_words`] on a
    /// temporary fanin buffer.
    ///
    /// Kept as the ablation baseline the bench-smoke throughput gate and the
    /// `tests/wide_sim.rs` differential suite compare the wide engine
    /// against; production code should use [`Netlist::node_words`] or
    /// [`WideSim`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::StimulusWidth`] if the stimulus widths do not
    /// match the number of primary or key inputs.
    pub fn node_words_fresh(&self, inputs: &[u64], keys: &[u64]) -> Result<Vec<u64>, NetlistError> {
        if inputs.len() != self.num_inputs() {
            return Err(NetlistError::StimulusWidth {
                expected: self.num_inputs(),
                got: inputs.len(),
            });
        }
        if keys.len() != self.num_key_inputs() {
            return Err(NetlistError::StimulusWidth {
                expected: self.num_key_inputs(),
                got: keys.len(),
            });
        }
        let mut values = vec![0u64; self.num_nodes()];
        for (pos, &id) in self.inputs().iter().enumerate() {
            values[id.index()] = inputs[pos];
        }
        for (pos, &id) in self.key_inputs().iter().enumerate() {
            values[id.index()] = keys[pos];
        }
        let mut fanin_values: Vec<u64> = Vec::with_capacity(8);
        for (id, node) in self.iter() {
            if let NodeKind::Gate { kind, fanins } = node.kind() {
                fanin_values.clear();
                fanin_values.extend(fanins.iter().map(|f| values[f.index()]));
                values[id.index()] = kind.evaluate_words(&fanin_values);
            }
        }
        Ok(values)
    }

    /// Evaluates the function of a single node given values for (a superset
    /// of) its support.  Inputs not mentioned default to `false`.
    ///
    /// This is useful for exhaustively enumerating the local function of a
    /// node whose support is small (for example comparator identification).
    /// Supplied ids resolve through the netlist's precomputed position maps
    /// ([`Netlist::input_position`]), so the cost is O(values), not
    /// O(values × inputs); ids that are not inputs are ignored.
    pub fn evaluate_node(&self, node: NodeId, input_values: &[(NodeId, bool)]) -> bool {
        let mut inputs = vec![false; self.num_inputs()];
        let mut keys = vec![false; self.num_key_inputs()];
        for &(id, value) in input_values {
            if let Some(pos) = self.input_position(id) {
                inputs[pos] = value;
            } else if let Some(pos) = self.key_input_position(id) {
                keys[pos] = value;
            }
        }
        let values = self
            .node_values(&inputs, &keys)
            .expect("widths are constructed to match");
        values[node.index()]
    }
}

/// Converts an integer pattern into a little-endian bit vector of width `n`.
///
/// Bit `i` of `pattern` becomes element `i` of the result.
pub fn pattern_to_bits(pattern: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| (pattern >> i) & 1 == 1).collect()
}

/// Converts a bit vector into an integer pattern (inverse of
/// [`pattern_to_bits`]).
pub fn bits_to_pattern(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    fn full_adder() -> Netlist {
        let mut nl = Netlist::new("fa");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cin = nl.add_input("cin");
        let s1 = nl.add_gate("s1", GateKind::Xor, &[a, b]);
        let sum = nl.add_gate("sum", GateKind::Xor, &[s1, cin]);
        let c1 = nl.add_gate("c1", GateKind::And, &[a, b]);
        let c2 = nl.add_gate("c2", GateKind::And, &[s1, cin]);
        let cout = nl.add_gate("cout", GateKind::Or, &[c1, c2]);
        nl.add_output("sum", sum);
        nl.add_output("cout", cout);
        nl
    }

    /// One gate of every kind and arity class, to exercise all sim paths.
    fn gate_zoo() -> Netlist {
        let mut nl = Netlist::new("zoo");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let k = nl.add_key_input("k");
        let c0 = nl.add_gate("c0", GateKind::Const0, &[]);
        let c1 = nl.add_gate("c1", GateKind::Const1, &[]);
        let buf = nl.add_gate("buf", GateKind::Buf, &[a]);
        let not = nl.add_gate("not", GateKind::Not, &[b]);
        let and3 = nl.add_gate("and3", GateKind::And, &[a, b, c]);
        let nand3 = nl.add_gate("nand3", GateKind::Nand, &[a, b, k]);
        let or3 = nl.add_gate("or3", GateKind::Or, &[buf, not, c]);
        let nor2 = nl.add_gate("nor2", GateKind::Nor, &[c0, c]);
        let xor4 = nl.add_gate("xor4", GateKind::Xor, &[a, b, c, k]);
        let xnor3 = nl.add_gate("xnor3", GateKind::Xnor, &[and3, or3, c1]);
        let top = nl.add_gate("top", GateKind::Or, &[nand3, nor2, xor4, xnor3]);
        nl.add_output("top", top);
        nl.add_output("xor4", xor4);
        nl
    }

    #[test]
    fn full_adder_truth_table() {
        let nl = full_adder();
        for pattern in 0..8u64 {
            let bits = pattern_to_bits(pattern, 3);
            let outs = nl.evaluate(&bits, &[]);
            let expected_sum = bits.iter().filter(|&&b| b).count();
            assert_eq!(outs[0], expected_sum % 2 == 1, "sum for {pattern:03b}");
            assert_eq!(outs[1], expected_sum >= 2, "cout for {pattern:03b}");
        }
    }

    #[test]
    fn word_simulation_matches_scalar() {
        let nl = full_adder();
        // Pack all 8 patterns into the low 8 bits of each word.
        let mut inputs = vec![0u64; 3];
        for pattern in 0..8u64 {
            for (i, word) in inputs.iter_mut().enumerate() {
                *word |= ((pattern >> i) & 1) << pattern;
            }
        }
        let outs = nl.evaluate_words(&inputs, &[]).expect("widths match");
        for pattern in 0..8u64 {
            let bits = pattern_to_bits(pattern, 3);
            let scalar = nl.evaluate(&bits, &[]);
            assert_eq!((outs[0] >> pattern) & 1 == 1, scalar[0]);
            assert_eq!((outs[1] >> pattern) & 1 == 1, scalar[1]);
        }
    }

    #[test]
    fn zoo_scalar_word_and_fresh_paths_agree() {
        let nl = gate_zoo();
        for pattern in 0..16u64 {
            let bits = pattern_to_bits(pattern, 4);
            let (ins, key) = (&bits[..3], &bits[3..]);
            let scalar = nl.node_values(ins, key).expect("widths match");
            let in_words: Vec<u64> = ins.iter().map(|&b| if b { !0 } else { 0 }).collect();
            let key_words: Vec<u64> = key.iter().map(|&b| if b { !0 } else { 0 }).collect();
            let words = nl.node_words(&in_words, &key_words).expect("widths match");
            let fresh = nl
                .node_words_fresh(&in_words, &key_words)
                .expect("widths match");
            assert_eq!(words, fresh, "engine vs baseline on {pattern:04b}");
            for (i, &v) in scalar.iter().enumerate() {
                let expected = if v { !0u64 } else { 0 };
                assert_eq!(words[i], expected, "node {i} on {pattern:04b}");
            }
        }
    }

    #[test]
    fn wide_sim_matches_scalar_across_widths() {
        let nl = gate_zoo();
        for width in [1usize, 2, 4, 8] {
            let mut sim = WideSim::new(&nl, width);
            assert_eq!(sim.patterns_per_sweep(), width * 64);
            // A cheap deterministic stimulus that differs per lane and pin.
            let mk = |seed: u64, count: usize| -> Vec<u64> {
                (0..count as u64)
                    .map(|i| (seed.wrapping_mul(i + 1)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .collect()
            };
            let inputs = mk(3, nl.num_inputs() * width);
            let keys = mk(7, nl.num_key_inputs() * width);
            sim.run(&nl, &inputs, &keys).expect("widths match");
            for lane in 0..width {
                for bit in 0..64 {
                    let in_bits: Vec<bool> = (0..nl.num_inputs())
                        .map(|i| (inputs[i * width + lane] >> bit) & 1 == 1)
                        .collect();
                    let key_bits: Vec<bool> = (0..nl.num_key_inputs())
                        .map(|i| (keys[i * width + lane] >> bit) & 1 == 1)
                        .collect();
                    let scalar = nl.node_values(&in_bits, &key_bits).expect("widths match");
                    for (id, _) in nl.iter() {
                        let wide = (sim.node(id)[lane] >> bit) & 1 == 1;
                        assert_eq!(
                            wide,
                            scalar[id.index()],
                            "node {id:?} w={width} lane={lane} bit={bit}"
                        );
                    }
                }
            }
            // The scratch is reusable: a second run with fresh stimuli must
            // fully overwrite the previous sweep.
            let inputs2 = mk(11, nl.num_inputs() * width);
            let keys2 = mk(13, nl.num_key_inputs() * width);
            sim.run(&nl, &inputs2, &keys2).expect("widths match");
            let once = WideSim::new(&nl, width);
            let mut once = once;
            once.run(&nl, &inputs2, &keys2).expect("widths match");
            assert_eq!(sim.into_values(), once.into_values());
        }
    }

    #[test]
    fn wide_sim_checks_stimulus_widths() {
        let nl = full_adder();
        let mut sim = WideSim::new(&nl, 2);
        assert!(matches!(
            sim.run(&nl, &[0; 3], &[]),
            Err(NetlistError::StimulusWidth {
                expected: 6,
                got: 3
            })
        ));
        assert!(sim.run(&nl, &[0; 6], &[0]).is_err());
        assert!(sim.run(&nl, &[0; 6], &[]).is_ok());
    }

    #[test]
    fn extend_with_outputs_gathers_declaration_order() {
        let nl = full_adder();
        let mut sim = WideSim::new(&nl, 2);
        let inputs = [1u64, 2, 3, 4, 5, 6];
        sim.run(&nl, &inputs, &[]).expect("widths match");
        let mut out = Vec::new();
        sim.extend_with_outputs(&nl, &mut out);
        let sum = nl.lookup("sum").unwrap();
        let cout = nl.lookup("cout").unwrap();
        assert_eq!(out[..2], *sim.node(sum));
        assert_eq!(out[2..4], *sim.node(cout));
    }

    #[test]
    fn stimulus_width_is_checked() {
        let nl = full_adder();
        assert!(matches!(
            nl.try_evaluate(&[true], &[]),
            Err(NetlistError::StimulusWidth {
                expected: 3,
                got: 1
            })
        ));
        assert!(nl.evaluate_words(&[0, 0], &[]).is_err());
        assert!(nl.node_words_fresh(&[0, 0], &[]).is_err());
    }

    #[test]
    fn evaluate_node_uses_defaults() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate("g", GateKind::Or, &[a, b]);
        nl.add_output("g", g);
        assert!(!nl.evaluate_node(g, &[]));
        assert!(nl.evaluate_node(g, &[(a, true)]));
        assert!(nl.evaluate_node(g, &[(b, true)]));
        // Non-input ids (gates) are silently ignored, as before.
        assert!(!nl.evaluate_node(g, &[(g, true)]));
    }

    #[test]
    fn pattern_round_trip() {
        for p in [0u64, 1, 5, 0b1011, 63] {
            assert_eq!(bits_to_pattern(&pattern_to_bits(p, 6)), p);
        }
    }

    #[test]
    fn key_inputs_participate() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let k = nl.add_key_input("k");
        let g = nl.add_gate("g", GateKind::Xor, &[a, k]);
        nl.add_output("g", g);
        assert_eq!(nl.evaluate(&[true], &[true]), vec![false]);
        assert_eq!(nl.evaluate(&[true], &[false]), vec![true]);
    }
}
