//! Gate-level netlist substrate for the FALL attacks reproduction.
//!
//! This crate provides everything the locking schemes and attacks need from a
//! logic-synthesis toolchain (the role ABC plays in the original paper):
//!
//! * a gate-level [`Netlist`] data structure with primary inputs, key inputs
//!   and named outputs,
//! * ISCAS `.bench` reading and writing ([`bench_format`]),
//! * fast single-pattern and 64-way parallel simulation ([`sim`]),
//! * an And-Inverter Graph with structural hashing ([`aig`], [`strash`]) used
//!   to optimise locked netlists and remove structural bias,
//! * support-set / transitive-fanin-cone analyses ([`analysis`]),
//! * Tseitin CNF encoding into the [`sat`] solver ([`cnf`]),
//! * seeded random circuit generation used as the ISCAS'85/MCNC benchmark
//!   substitute ([`random`]),
//! * gate-level Hamming-distance comparators used by SFLL-HD ([`hamming`]).
//!
//! # Example
//!
//! ```
//! use netlist::{GateKind, Netlist};
//!
//! let mut nl = Netlist::new("half_adder");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let sum = nl.add_gate("sum", GateKind::Xor, &[a, b]);
//! let carry = nl.add_gate("carry", GateKind::And, &[a, b]);
//! nl.add_output("sum", sum);
//! nl.add_output("carry", carry);
//! assert_eq!(nl.evaluate(&[true, true], &[]), vec![false, true]);
//! ```

#![deny(missing_docs)]

pub mod aig;
pub mod analysis;
pub mod bench_format;
pub mod cnf;
pub mod dot;
mod error;
mod gate;
pub mod hamming;
mod netlist;
pub mod random;
pub mod rewrite;
pub mod sim;
pub mod strash;

pub use error::NetlistError;
pub use gate::GateKind;
pub use netlist::{Netlist, Node, NodeId, NodeKind};
pub use sim::{WideSim, DEFAULT_WIDE_WORDS};
