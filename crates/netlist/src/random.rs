//! Seeded random combinational circuit generation.
//!
//! The original evaluation uses ISCAS'85 and MCNC benchmark circuits, which
//! are not redistributable here.  As documented in `DESIGN.md`, we substitute
//! deterministic pseudo-random multi-level circuits with the same interface
//! sizes (inputs, outputs, gates).  The FALL attacks never rely on the
//! semantics of the original circuit — only on the structure the locking
//! scheme adds — so this preserves the behaviour being measured.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use crate::{GateKind, Netlist, NodeId};

/// Specification of a random benchmark circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RandomCircuitSpec {
    /// Design name.
    pub name: String,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of outputs.
    pub num_outputs: usize,
    /// Number of gates to generate.
    pub num_gates: usize,
    /// PRNG seed; the same spec always yields the same circuit.
    pub seed: u64,
}

impl RandomCircuitSpec {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        num_inputs: usize,
        num_outputs: usize,
        num_gates: usize,
    ) -> Self {
        RandomCircuitSpec {
            name: name.into(),
            num_inputs,
            num_outputs,
            num_gates,
            seed: 0xFA11_2019,
        }
    }

    /// Sets the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

const GATE_CHOICES: &[GateKind] = &[
    GateKind::And,
    GateKind::Nand,
    GateKind::Or,
    GateKind::Nor,
    GateKind::Xor,
    GateKind::Xnor,
];

/// Generates a random combinational circuit from a specification.
///
/// The generator guarantees that:
/// * every primary input is in the transitive fanin of some gate,
/// * every declared output exists and is driven by a gate (or an input when
///   `num_gates == 0`),
/// * the circuit is a DAG of two-input gates with depth roughly logarithmic
///   in the gate count (fanins are biased towards recently created nodes).
///
/// # Panics
///
/// Panics if `num_inputs == 0` or `num_outputs == 0`.
pub fn generate(spec: &RandomCircuitSpec) -> Netlist {
    assert!(spec.num_inputs > 0, "circuit needs at least one input");
    assert!(spec.num_outputs > 0, "circuit needs at least one output");
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let mut nl = Netlist::new(spec.name.clone());

    let inputs: Vec<NodeId> = (0..spec.num_inputs)
        .map(|i| nl.add_input(format!("pi{i}")))
        .collect();

    let mut pool: Vec<NodeId> = inputs.clone();
    for g in 0..spec.num_gates {
        let kind = *GATE_CHOICES.choose(&mut rng).expect("non-empty");
        // The first `num_inputs` gates each consume a distinct primary input so
        // that no input is left dangling.
        let a = match inputs.get(g) {
            Some(&input) => input,
            None => pick_biased(&pool, &mut rng),
        };
        let mut b = pick_biased(&pool, &mut rng);
        if b == a {
            b = pool[rng.gen_range(0..pool.len())];
        }
        let id = if b == a {
            nl.add_gate(format!("g{g}"), GateKind::Not, &[a])
        } else {
            nl.add_gate(format!("g{g}"), kind, &[a, b])
        };
        pool.push(id);
    }

    // Outputs are driven by the deepest recently created nodes so that their
    // cones span most of the circuit.
    let drivers: Vec<NodeId> = pool.iter().rev().take(spec.num_outputs).copied().collect();
    for (i, driver) in drivers.iter().enumerate() {
        nl.add_output(format!("po{i}"), *driver);
    }
    // If there were fewer nodes than outputs, reuse drivers cyclically.
    for i in drivers.len()..spec.num_outputs {
        let driver = pool[i % pool.len()];
        nl.add_output(format!("po{i}"), driver);
    }
    nl
}

/// Picks a node with a bias towards the most recently created ones, which
/// yields deeper, more realistic circuits than uniform selection.
fn pick_biased(pool: &[NodeId], rng: &mut ChaCha8Rng) -> NodeId {
    let n = pool.len();
    // Take the maximum of two uniform draws: linear bias towards the end.
    let i = rng.gen_range(0..n).max(rng.gen_range(0..n));
    pool[i]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::support;

    #[test]
    fn generation_is_deterministic() {
        let spec = RandomCircuitSpec::new("det", 8, 3, 50);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.num_gates(), b.num_gates());
        for pattern in [0u64, 1, 0xAB, 0xFF] {
            let bits = crate::sim::pattern_to_bits(pattern, 8);
            assert_eq!(a.evaluate(&bits, &[]), b.evaluate(&bits, &[]));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&RandomCircuitSpec::new("s", 8, 2, 60).with_seed(1));
        let b = generate(&RandomCircuitSpec::new("s", 8, 2, 60).with_seed(2));
        let mut any_difference = false;
        for pattern in 0..64u64 {
            let bits = crate::sim::pattern_to_bits(pattern, 8);
            if a.evaluate(&bits, &[]) != b.evaluate(&bits, &[]) {
                any_difference = true;
                break;
            }
        }
        assert!(
            any_difference,
            "distinct seeds should give distinct circuits"
        );
    }

    #[test]
    fn requested_sizes_are_honoured() {
        let spec = RandomCircuitSpec::new("sz", 10, 4, 120);
        let nl = generate(&spec);
        assert_eq!(nl.num_inputs(), 10);
        assert_eq!(nl.num_outputs(), 4);
        assert_eq!(nl.num_gates(), 120);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn outputs_depend_on_many_inputs() {
        let spec = RandomCircuitSpec::new("dep", 12, 2, 150);
        let nl = generate(&spec);
        let (_, driver) = nl.outputs()[0].clone();
        let s = support(&nl, driver);
        assert!(
            s.primary.len() >= 6,
            "output cone covers only {} of 12 inputs",
            s.primary.len()
        );
    }

    #[test]
    fn tiny_circuits_are_valid() {
        let nl = generate(&RandomCircuitSpec::new("tiny", 2, 1, 0));
        assert_eq!(nl.num_outputs(), 1);
        assert!(nl.validate().is_ok());
    }
}
