//! Umbrella crate re-exporting the FALL attacks workspace.
//!
//! See the [`fall`], [`locking`], [`netlist`] and [`sat`] crates for the
//! actual functionality; this package exists to host the runnable examples
//! and the cross-crate integration tests.

pub use fall;
pub use locking;
pub use netlist;
pub use sat;
