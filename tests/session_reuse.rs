//! Property-based differential suite for frame-scoped predicate generations:
//! a *recycled* `AttackSession` — one long-lived session whose confirmation
//! predicates are retired and rebound (`begin_predicate`/`retire_predicate`)
//! — must be observationally equivalent to a brand-new session per run.
//!
//! The driving idea is lockstep execution: for every generation, the same
//! query sequence runs against the recycled session and against a fresh
//! oracle session, with the *recycled* session's models (distinguishing
//! inputs, candidate keys) fed to both sides.  Satisfiability is a semantic
//! property of the accumulated constraints, so every solve status must
//! agree exactly — learnt clauses carried across generations may change
//! which model is found, never whether one exists.  Model-carrying results
//! are checked semantically instead (ϕ-membership, consistency with every
//! observed I/O pair, functional correctness of confirmed keys).
//!
//! Failures print the case index, the generation, the scheme/seed label and
//! the iteration, mirroring the deterministic case-runner convention of
//! `tests/property_based.rs`.

use fall::key_confirmation::{key_confirmation_in, KeyConfirmationConfig};
use fall::oracle::{Oracle, SimOracle};
use fall::session::{AttackSession, KeyVector};
use locking::{Key, LockedCircuit, LockingScheme, SfllHd, TtLock, XorLock};
use netlist::random::{generate, RandomCircuitSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sat::{Lit, SolveResult, Solver};

/// Predicate generations run through each recycled session.
const GENERATIONS: usize = 3;
/// Safety cap on distinguishing-input iterations per generation.
const MAX_ITERATIONS: usize = 400;

/// Runs `property` on `cases` pseudo-random cases seeded from `seed`
/// (consistent with `tests/property_based.rs`).
fn check<F: FnMut(usize, &mut ChaCha8Rng)>(seed: u64, cases: usize, mut property: F) {
    for case in 0..cases {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9));
        property(case, &mut rng);
    }
}

/// One random locked instance plus a shrinker-friendly label.
struct Case {
    locked: LockedCircuit,
    label: String,
}

fn random_case(rng: &mut ChaCha8Rng) -> Case {
    let seed = rng.gen_range(0..1000u64);
    let inputs = rng.gen_range(7..10usize);
    let gates = rng.gen_range(40..70usize);
    let original = generate(&RandomCircuitSpec::new("reuse", inputs, 2, gates).with_seed(seed));
    let (locked, label) = match rng.gen_range(0..3usize) {
        0 => {
            let width = rng.gen_range(4..7usize);
            (
                XorLock::new(width).with_seed(seed).lock(&original),
                format!("xor{width} in{inputs} g{gates} seed {seed}"),
            )
        }
        1 => {
            let h = rng.gen_range(0..2usize);
            (
                SfllHd::new(5, h).with_seed(seed).lock(&original),
                format!("sfll5-hd{h} in{inputs} g{gates} seed {seed}"),
            )
        }
        _ => (
            TtLock::new(5).with_seed(seed).lock(&original),
            format!("tt5 in{inputs} g{gates} seed {seed}"),
        ),
    };
    Case {
        locked: locked.expect("lock"),
        label,
    }
}

/// The predicate ϕ bound for one generation.
#[derive(Clone, Debug)]
enum PhiMode {
    /// ϕ = OR over an explicit key shortlist.
    Shortlist(Vec<Key>),
    /// ϕ pins one key bit (a § VI-D key-space region).
    PinBit { bit: usize, value: bool },
    /// ϕ = true (key confirmation degenerates to the SAT attack).
    Free,
}

fn random_mode(rng: &mut ChaCha8Rng, locked: &LockedCircuit) -> PhiMode {
    let width = locked.key.len();
    match rng.gen_range(0..4usize) {
        0 => PhiMode::Shortlist(vec![locked.key.clone(), locked.key.complement()]),
        1 => PhiMode::Shortlist(vec![
            locked.key.complement(),
            Key::from_pattern(rng.gen_range(0..1 << width.min(16)), width),
        ]),
        2 => PhiMode::PinBit {
            bit: rng.gen_range(0..width),
            value: rng.gen(),
        },
        _ => PhiMode::Free,
    }
}

/// Encodes ϕ on the predicate key literals (same shape as the production
/// shortlist encoding, reimplemented here so the test stays independent).
fn apply_mode(solver: &mut Solver, key_lits: &[Lit], mode: &PhiMode) {
    match mode {
        PhiMode::Shortlist(keys) => {
            let selectors: Vec<Lit> = keys
                .iter()
                .map(|key| {
                    let selector = Lit::positive(solver.new_var());
                    for (&lit, &bit) in key_lits.iter().zip(key.bits()) {
                        solver.add_clause([!selector, if bit { lit } else { !lit }]);
                    }
                    selector
                })
                .collect();
            solver.add_clause(selectors);
        }
        PhiMode::PinBit { bit, value } => {
            let lit = key_lits[*bit];
            solver.add_clause([if *value { lit } else { !lit }]);
        }
        PhiMode::Free => {}
    }
}

fn key_satisfies_phi(mode: &PhiMode, key: &Key) -> bool {
    match mode {
        PhiMode::Shortlist(keys) => keys.contains(key),
        PhiMode::PinBit { bit, value } => key.bits()[*bit] == *value,
        PhiMode::Free => true,
    }
}

/// Checks that a candidate key reproduces every observed I/O pair on the
/// locked circuit.
fn consistent_with_observations(
    locked: &LockedCircuit,
    key: &Key,
    observed: &[(Vec<bool>, Vec<bool>)],
) -> bool {
    observed
        .iter()
        .all(|(x, y)| &locked.locked.evaluate(x, key.bits()) == y)
}

/// Runs one key-confirmation generation (Algorithm 4's P/Q loop) in lockstep
/// on the recycled and the fresh session, asserting observational
/// equivalence at every step.  Leaves the generation open on both sessions.
#[allow(clippy::too_many_arguments)]
fn lockstep_confirmation(
    recycled: &mut AttackSession<'_>,
    fresh: &mut AttackSession<'_>,
    oracle: &SimOracle,
    case: &Case,
    mode: &PhiMode,
    case_index: usize,
    generation: usize,
) {
    let ctx = |detail: &str| {
        format!(
            "case {case_index} gen {generation} [{}] mode {mode:?}: {detail}",
            case.label
        )
    };
    recycled.begin_predicate();
    fresh.begin_predicate();
    recycled.add_predicate_clauses(|solver, keys| apply_mode(solver, keys, mode));
    fresh.add_predicate_clauses(|solver, keys| apply_mode(solver, keys, mode));

    let mut observed: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
    for iteration in 0..MAX_ITERATIONS {
        // P query: candidate consistent with ϕ and the observations so far.
        let (recycled_status, recycled_key) = recycled.candidate_key();
        let (fresh_status, fresh_key) = fresh.candidate_key();
        assert_eq!(
            recycled_status,
            fresh_status,
            "{}",
            ctx(&format!(
                "candidate statuses diverge at iteration {iteration}"
            ))
        );
        let candidate = match recycled_status {
            SolveResult::Unsat => return, // ⊥ on both sides: generation done.
            SolveResult::Unknown => panic!("{}", ctx("unexpected Unknown (no budget set)")),
            SolveResult::Sat => recycled_key.expect("sat carries a key"),
        };
        for (who, key) in [
            ("recycled", &candidate),
            ("fresh", fresh_key.as_ref().expect("sat carries a key")),
        ] {
            assert!(
                key_satisfies_phi(mode, key),
                "{}",
                ctx(&format!(
                    "{who} candidate {key} violates ϕ at iteration {iteration}"
                ))
            );
            assert!(
                consistent_with_observations(&case.locked, key, &observed),
                "{}",
                ctx(&format!(
                    "{who} candidate {key} contradicts an observed I/O pair at \
                     iteration {iteration}"
                ))
            );
        }

        // Q query with the *same* candidate on both sides.
        let recycled_q = recycled.find_dip_against(&candidate);
        let fresh_q = fresh.find_dip_against(&candidate);
        assert_eq!(
            recycled_q,
            fresh_q,
            "{}",
            ctx(&format!("Q statuses diverge at iteration {iteration}"))
        );
        if recycled_q == SolveResult::Unsat {
            // Confirmed on both sides: the key must really unlock the chip.
            assert!(
                case.locked
                    .key_is_functionally_correct(&candidate, 128, case_index as u64),
                "{}",
                ctx(&format!(
                    "confirmed key {candidate} is not functionally correct"
                ))
            );
            return;
        }

        // Feed the recycled session's distinguishing input to both sides.
        let x = recycled.dip_inputs();
        let y = oracle.query(&x);
        observed.push((x.clone(), y.clone()));
        recycled.constrain_key_with_io(KeyVector::Predicate, &x, &y);
        recycled.constrain_key_with_io(KeyVector::B, &x, &y);
        fresh.constrain_key_with_io(KeyVector::Predicate, &x, &y);
        fresh.constrain_key_with_io(KeyVector::B, &x, &y);
    }
    panic!(
        "{}",
        ctx("generation did not converge within the iteration cap")
    );
}

/// For random netlists and locking schemes, N retire-then-rebind predicate
/// generations on one session match a fresh-session oracle query for query.
#[test]
fn recycled_confirmation_generations_match_fresh_sessions() {
    check(201, 6, |case_index, rng| {
        let case = random_case(rng);
        let oracle = SimOracle::new(case.locked.original.clone());
        let mut recycled = AttackSession::new(&case.locked.locked);
        for generation in 0..GENERATIONS {
            let mode = random_mode(rng, &case.locked);
            let mut fresh = AttackSession::new(&case.locked.locked);
            lockstep_confirmation(
                &mut recycled,
                &mut fresh,
                &oracle,
                &case,
                &mode,
                case_index,
                generation,
            );
            recycled.retire_predicate();
        }
        assert_eq!(
            recycled.cone_encodings_built(),
            1,
            "case {case_index} [{}]: generations must never re-encode the circuit",
            case.label
        );
    });
}

/// The SAT-attack flow (`find_dip`/`force_dip`/`extract_key`) inside a
/// predicate generation is likewise equivalent to a fresh session, across
/// retire-then-rebind cycles — including the re-arming of the difference
/// constraint that `extract_key` retires.
#[test]
fn recycled_dip_and_extract_key_match_fresh_sessions() {
    check(202, 5, |case_index, rng| {
        let case = random_case(rng);
        let oracle = SimOracle::new(case.locked.original.clone());
        let mut recycled = AttackSession::new(&case.locked.locked);
        for generation in 0..GENERATIONS {
            let ctx = |detail: &str| {
                format!(
                    "case {case_index} gen {generation} [{}]: {detail}",
                    case.label
                )
            };
            let mut fresh = AttackSession::new(&case.locked.locked);
            recycled.begin_predicate();
            fresh.begin_predicate();

            let mut observed: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
            loop {
                assert!(
                    observed.len() < MAX_ITERATIONS,
                    "{}",
                    ctx("DIP loop did not converge within the iteration cap")
                );
                let recycled_status = recycled.find_dip();
                let fresh_status = fresh.find_dip();
                assert_eq!(
                    recycled_status,
                    fresh_status,
                    "{}",
                    ctx(&format!(
                        "find_dip diverges at iteration {}",
                        observed.len()
                    ))
                );
                match recycled_status {
                    SolveResult::Unsat => break,
                    SolveResult::Unknown => {
                        panic!("{}", ctx("unexpected Unknown (no budget set)"))
                    }
                    SolveResult::Sat => {}
                }
                let x = recycled.dip_inputs();
                let y = oracle.query(&x);
                observed.push((x.clone(), y.clone()));
                recycled.force_dip(&x, &y);
                fresh.force_dip(&x, &y);
            }

            let (recycled_status, recycled_key) = recycled.extract_key();
            let (fresh_status, fresh_key) = fresh.extract_key();
            assert_eq!(
                recycled_status,
                fresh_status,
                "{}",
                ctx("extract_key statuses diverge")
            );
            if recycled_status == SolveResult::Sat {
                for (who, key) in [
                    ("recycled", recycled_key.expect("sat carries a key")),
                    ("fresh", fresh_key.expect("sat carries a key")),
                ] {
                    assert!(
                        consistent_with_observations(&case.locked, &key, &observed),
                        "{}",
                        ctx(&format!(
                            "{who} extracted key {key} contradicts an observation"
                        ))
                    );
                    assert!(
                        case.locked
                            .key_is_functionally_correct(&key, 128, case_index as u64),
                        "{}",
                        ctx(&format!(
                            "{who} extracted key {key} is not functionally correct"
                        ))
                    );
                }
            }
            recycled.retire_predicate();
        }
        assert_eq!(
            recycled.cone_encodings_built(),
            1,
            "case {case_index} [{}]: generations must never re-encode the circuit",
            case.label
        );
    });
}

/// Long-lived reuse at the public API level: one session runs many whole
/// key-confirmation runs back to back, each confirming or rejecting its
/// shortlist exactly like the first, with one circuit encoding total.
#[test]
fn one_session_serves_many_confirmation_runs() {
    let original = generate(&RandomCircuitSpec::new("reuse_many", 8, 2, 50));
    let locked = SfllHd::new(5, 0)
        .with_seed(2)
        .lock(&original)
        .expect("lock");
    let oracle = SimOracle::new(original);
    let config = KeyConfirmationConfig::default();
    let mut session = AttackSession::new(&locked.locked);

    for round in 0..8 {
        // Alternate between a shortlist containing the correct key and a
        // wrong-only shortlist: confirmation and rejection must both leave
        // the session clean for the next round.
        if round % 2 == 0 {
            let shortlist = [locked.key.clone(), locked.key.complement()];
            let result = key_confirmation_in(&mut session, &oracle, &shortlist, &config);
            assert!(result.completed, "round {round}");
            assert_eq!(result.key, Some(locked.key.clone()), "round {round}");
        } else {
            let shortlist = [locked.key.complement()];
            let result = key_confirmation_in(&mut session, &oracle, &shortlist, &config);
            assert!(result.completed, "round {round}");
            assert_eq!(result.key, None, "round {round}: wrong-only shortlist");
        }
    }
    assert_eq!(
        session.cone_encodings_built(),
        1,
        "eight confirmation runs share one circuit encoding"
    );
}
