//! Differential tests for the wide bit-parallel simulation engine and the
//! word-batched oracle transport: every width must agree with the scalar
//! reference bit for bit, and shipping the attack's oracle traffic in wide
//! blocks must not change its trajectory.

use fall::attack::{fall_attack, FallAttackConfig};
use fall::key_confirmation::KeyConfirmationConfig;
use fall::oracle::{CountingOracle, Oracle, SimOracle};
use fall::parallel::CachingOracle;
use locking::{LockingScheme, SfllHd, TtLock};
use netlist::random::{generate, RandomCircuitSpec};
use netlist::{Netlist, WideSim};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Random stimulus block for `netlist`: `pins * width` words, pin-major.
fn stimulus(rng: &mut ChaCha8Rng, pins: usize, width: usize) -> Vec<u64> {
    (0..pins * width).map(|_| rng.gen()).collect()
}

/// Extracts the scalar pattern at (`lane`, `bit`) from a pin-major block.
fn unpack(block: &[u64], pins: usize, width: usize, lane: usize, bit: usize) -> Vec<bool> {
    (0..pins)
        .map(|p| (block[p * width + lane] >> bit) & 1 == 1)
        .collect()
}

/// Runs the lockstep wide-vs-scalar comparison on one netlist: every node of
/// every lane of every width must match a scalar `node_values` sweep.
fn assert_wide_matches_scalar(nl: &Netlist, seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for width in WIDTHS {
        let inputs = stimulus(&mut rng, nl.num_inputs(), width);
        let keys = stimulus(&mut rng, nl.num_key_inputs(), width);
        let mut sim = WideSim::new(nl, width);
        sim.run(nl, &inputs, &keys).expect("stimulus fits");
        for lane in 0..width {
            // 8 probe bits per lane keep the scalar reference sweep cheap.
            for bit in [0usize, 1, 7, 13, 31, 32, 47, 63] {
                let in_bits = unpack(&inputs, nl.num_inputs(), width, lane, bit);
                let key_bits = unpack(&keys, nl.num_key_inputs(), width, lane, bit);
                let reference = nl.node_values(&in_bits, &key_bits).expect("widths");
                for (node, (id, _)) in nl.iter().enumerate() {
                    let got = (sim.node(id)[lane] >> bit) & 1 == 1;
                    assert_eq!(
                        got, reference[node],
                        "width {width} lane {lane} bit {bit} node {node}"
                    );
                }
            }
        }
    }
}

#[test]
fn wide_sim_matches_scalar_on_random_netlists() {
    for (i, (inputs, outputs, gates)) in [(6usize, 2usize, 40usize), (10, 3, 80), (14, 4, 150)]
        .into_iter()
        .enumerate()
    {
        let nl = generate(&RandomCircuitSpec::new(
            format!("ws_plain{i}"),
            inputs,
            outputs,
            gates,
        ));
        assert_wide_matches_scalar(&nl, 0x51D0 + i as u64);
    }
}

#[test]
fn wide_sim_matches_scalar_on_locked_netlists() {
    let original = generate(&RandomCircuitSpec::new("ws_locked", 12, 3, 90));
    let tt = TtLock::new(8).with_seed(3).lock(&original).expect("lock");
    let hd = SfllHd::new(10, 1)
        .with_seed(5)
        .lock(&original)
        .expect("lock");
    assert_wide_matches_scalar(&tt.locked, 0xA11);
    assert_wide_matches_scalar(&hd.optimized().locked, 0xB22);
}

#[test]
fn single_word_engine_agrees_with_the_fresh_baseline() {
    let original = generate(&RandomCircuitSpec::new("ws_fresh", 11, 2, 70));
    let locked = TtLock::new(6).with_seed(9).lock(&original).expect("lock");
    let mut rng = ChaCha8Rng::seed_from_u64(0xF4E5);
    let inputs = stimulus(&mut rng, locked.locked.num_inputs(), 1);
    let keys = stimulus(&mut rng, locked.locked.num_key_inputs(), 1);
    let reused = locked.locked.node_words(&inputs, &keys).expect("widths");
    let fresh = locked
        .locked
        .node_words_fresh(&inputs, &keys)
        .expect("widths");
    assert_eq!(reused, fresh);
}

#[test]
fn batched_oracle_queries_agree_with_scalar_for_all_widths() {
    let original = generate(&RandomCircuitSpec::new("ws_oracle", 9, 3, 60));
    let locked = SfllHd::new(7, 0)
        .with_seed(2)
        .lock(&original)
        .expect("lock");
    let plain = SimOracle::new(original);
    let activated = SimOracle::from_locked(locked.locked.clone(), &locked.key);
    let mut rng = ChaCha8Rng::seed_from_u64(0x0AC7E);
    for width in WIDTHS {
        let block = stimulus(&mut rng, plain.num_inputs(), width);
        let native = plain.query_words(&block, width);
        assert_eq!(native, activated.query_words(&block, width));
        for lane in 0..width {
            for bit in [0usize, 5, 63] {
                let bits = unpack(&block, plain.num_inputs(), width, lane, bit);
                let scalar = plain.query(&bits);
                for (o, &v) in scalar.iter().enumerate() {
                    assert_eq!((native[o * width + lane] >> bit) & 1 == 1, v);
                }
            }
        }
    }
}

/// A transport shim that ships every scalar query as a width-1 word block
/// with the pattern splatted across all 64 bits: the attack above it sees an
/// ordinary oracle, while everything below it sees only batched traffic.
struct BatchedTransport<'o>(&'o (dyn Oracle + Sync));

impl Oracle for BatchedTransport<'_> {
    fn query(&self, inputs: &[bool]) -> Vec<bool> {
        let block: Vec<u64> = inputs.iter().map(|&b| if b { !0 } else { 0 }).collect();
        let out = self.0.query_words(&block, 1);
        out.iter().map(|&word| word & 1 == 1).collect()
    }

    fn num_inputs(&self) -> usize {
        self.0.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.0.num_outputs()
    }
}

/// The full attack must extract identical keys over the scalar and batched
/// oracle transports, and the batched transport must never cost more unique
/// oracle patterns: the splatted block dedups to exactly the scalar query
/// under the sharded cache.
#[test]
fn attack_trajectory_is_identical_over_the_batched_transport() {
    let original = generate(&RandomCircuitSpec::new("ws_traj", 13, 3, 90));
    let locked = SfllHd::new(9, 1)
        .with_seed(77)
        .lock(&original)
        .expect("lock")
        .optimized();
    // Disable the equivalence check so spurious cubes can survive and key
    // confirmation actually exercises the oracle.
    let mut config = FallAttackConfig::for_h(1);
    config.equivalence_check = false;

    let scalar_counting = CountingOracle::new(SimOracle::new(original.clone()));
    let scalar_cache = CachingOracle::new(&scalar_counting);
    let scalar = fall_attack(&locked.locked, Some(&scalar_cache), &config);

    let batched_counting = CountingOracle::new(SimOracle::new(original));
    let batched_cache = CachingOracle::new(&batched_counting);
    let transport = BatchedTransport(&batched_cache);
    let batched = fall_attack(&locked.locked, Some(&transport), &config);

    assert_eq!(scalar.status, batched.status);
    assert_eq!(scalar.shortlisted_keys, batched.shortlisted_keys);
    assert_eq!(scalar.confirmed_key, batched.confirmed_key);
    assert!(
        batched_cache.unique_queries() <= scalar_cache.unique_queries(),
        "batched transport used {} unique patterns, scalar used {}",
        batched_cache.unique_queries(),
        scalar_cache.unique_queries()
    );
    // The cache resolves each splatted block to exactly its distinct
    // patterns, so the real oracle underneath saw the same scalar traffic.
    assert_eq!(batched_counting.queries(), scalar_counting.queries());
}

/// The word-batched shortlist prescreen must not change the confirmed key,
/// and its probe block must travel through `query_words`.
#[test]
fn screened_confirmation_matches_plain_and_ships_word_blocks() {
    let original = generate(&RandomCircuitSpec::new("ws_screen", 13, 3, 90));
    let locked = SfllHd::new(9, 1)
        .with_seed(41)
        .lock(&original)
        .expect("lock")
        .optimized();
    let mut plain_config = FallAttackConfig::for_h(1);
    plain_config.equivalence_check = false;
    let mut screened_config = plain_config.clone();
    screened_config.confirmation = KeyConfirmationConfig {
        screen_words: 4,
        ..KeyConfirmationConfig::default()
    };

    let plain_oracle = CountingOracle::new(SimOracle::new(original.clone()));
    let plain = fall_attack(&locked.locked, Some(&plain_oracle), &plain_config);

    let screened_oracle = CountingOracle::new(SimOracle::new(original));
    let screened = fall_attack(&locked.locked, Some(&screened_oracle), &screened_config);

    assert_eq!(plain.status, screened.status);
    assert_eq!(plain.confirmed_key, screened.confirmed_key);
    if screened.confirmed_key.is_some() && screened.shortlisted_keys.len() > 1 {
        assert_eq!(
            screened_oracle.batched_words(),
            4,
            "the prescreen ships its probes as one 4-word batch"
        );
    }
}

/// Fanning the functional analyses across workers must not change the
/// shortlist, the analyses used, or the prefilter counters.
#[test]
fn parallel_analyses_are_a_drop_in_for_the_serial_sweep() {
    let original = generate(&RandomCircuitSpec::new("ws_par", 14, 3, 90));
    let locked = SfllHd::new(10, 1)
        .with_seed(6)
        .lock(&original)
        .expect("lock")
        .optimized();
    let serial = fall_attack(&locked.locked, None, &FallAttackConfig::for_h(1));
    assert!(
        serial.prefilter.patterns_simulated > 0,
        "analyses exercise the wide prefilters"
    );
    for workers in [2usize, 3, 4] {
        let mut config = FallAttackConfig::for_h(1);
        config.analysis_workers = workers;
        let parallel = fall_attack(&locked.locked, None, &config);
        assert_eq!(parallel.status, serial.status, "workers {workers}");
        assert_eq!(parallel.shortlisted_keys, serial.shortlisted_keys);
        assert_eq!(parallel.analyses_used, serial.analyses_used);
        assert_eq!(parallel.prefilter, serial.prefilter);
    }
}
