//! Property-based tests over the core invariants of the stack.
//!
//! The original version of this file used `proptest`; the offline build
//! environment cannot fetch it, so the properties are driven by a small
//! deterministic case runner instead: every property is checked over a fixed
//! number of pseudo-random cases derived from a per-test seed, which keeps
//! failures reproducible (the failing case index and inputs are reported).

use locking::{Key, LockingScheme, SfllHd, TtLock, XorLock};
use netlist::random::{generate, RandomCircuitSpec};
use netlist::sim::pattern_to_bits;
use netlist::strash::strash;
use netlist::{GateKind, Netlist, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sat::{parse_dimacs, write_dimacs, CnfFormula, Lit, SolveResult, Solver, Var};

/// Runs `property` on `cases` pseudo-random cases seeded from `seed`.
fn check<F: FnMut(usize, &mut ChaCha8Rng)>(seed: u64, cases: usize, mut property: F) {
    for case in 0..cases {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9));
        property(case, &mut rng);
    }
}

/// Builds a small random circuit from a chosen seed.
fn seeded_circuit(seed: u64, inputs: usize, gates: usize) -> Netlist {
    generate(&RandomCircuitSpec::new("prop", inputs, 2, gates).with_seed(seed))
}

/// Structural hashing never changes the circuit function.
#[test]
fn strash_preserves_function() {
    check(101, 24, |case, rng| {
        let circuit = seeded_circuit(rng.gen_range(0..1_000u64), 8, 60);
        let optimized = strash(&circuit);
        let pattern = rng.gen_range(0..256u64);
        let bits = pattern_to_bits(pattern, 8);
        assert_eq!(
            circuit.evaluate(&bits, &[]),
            optimized.evaluate(&bits, &[]),
            "case {case} pattern {pattern:08b}"
        );
    });
}

/// The Tseitin encoding agrees with direct simulation on every output.
#[test]
fn cnf_encoding_matches_simulation() {
    check(102, 24, |case, rng| {
        let circuit = seeded_circuit(rng.gen_range(0..500u64), 8, 40);
        let pattern = rng.gen_range(0..256u64);
        let bits = pattern_to_bits(pattern, 8);
        let expected = circuit.evaluate(&bits, &[]);

        let mut solver = Solver::new();
        let enc = netlist::cnf::encode(&circuit, &mut solver, &netlist::cnf::PinBinding::default());
        for (lit, value) in enc.inputs.iter().zip(&bits) {
            solver.add_clause([if *value { *lit } else { !*lit }]);
        }
        assert_eq!(solver.solve(), SolveResult::Sat, "case {case}");
        let got: Vec<bool> = enc
            .outputs
            .iter()
            .map(|&l| solver.value(l).unwrap())
            .collect();
        assert_eq!(got, expected, "case {case} pattern {pattern:08b}");
    });
}

/// Generates a random CNF over at most `max_vars` variables.
fn random_cnf(rng: &mut ChaCha8Rng, max_vars: usize, max_clauses: usize) -> (usize, Vec<Vec<Lit>>) {
    let num_vars = rng.gen_range(1..max_vars + 1);
    let num_clauses = rng.gen_range(1..max_clauses + 1);
    let clauses: Vec<Vec<Lit>> = (0..num_clauses)
        .map(|_| {
            let len = rng.gen_range(1..4usize);
            (0..len)
                .map(|_| Lit::new(Var::from_index(rng.gen_range(0..num_vars)), rng.gen()))
                .collect()
        })
        .collect();
    (num_vars, clauses)
}

/// Brute-force satisfiability of a CNF over `num_vars <= 24` variables.
fn brute_force_sat(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    (0u64..(1 << num_vars)).any(|assignment| {
        clauses.iter().all(|clause| {
            clause.iter().any(|l| {
                let value = (assignment >> l.var().index()) & 1 == 1;
                value == l.is_positive()
            })
        })
    })
}

/// The SAT solver agrees with brute force on random formulas of up to
/// 12 variables, and reported models satisfy every clause.
#[test]
fn solver_matches_brute_force_up_to_12_vars() {
    check(103, 80, |case, rng| {
        let (num_vars, clauses) = random_cnf(rng, 12, 40);
        let mut solver = Solver::new();
        solver.ensure_vars(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        let solver_says_sat = solver.solve() == SolveResult::Sat;
        let expected = brute_force_sat(num_vars, &clauses);
        assert_eq!(solver_says_sat, expected, "case {case}: {clauses:?}");

        if solver_says_sat {
            for clause in &clauses {
                assert!(
                    clause.iter().any(|&l| solver.value(l) == Some(true)),
                    "case {case}: model violates {clause:?}"
                );
            }
        }
    });
}

/// A DIMACS round trip preserves the formula exactly (variable count, clause
/// count, satisfiability, and a second round trip is a fixed point).
#[test]
fn dimacs_round_trip_is_lossless() {
    check(104, 60, |case, rng| {
        let (num_vars, clauses) = random_cnf(rng, 12, 30);
        let mut cnf = CnfFormula::new();
        while cnf.num_vars() < num_vars {
            cnf.new_var();
        }
        for clause in &clauses {
            cnf.add_clause(clause.iter().copied());
        }

        let text = write_dimacs(&cnf);
        let reparsed = parse_dimacs(&text).expect("serialised DIMACS must parse");
        assert_eq!(cnf, reparsed, "case {case}: round trip changed the formula");
        assert_eq!(
            write_dimacs(&reparsed),
            text,
            "case {case}: second round trip is not a fixed point"
        );

        // Satisfiability is preserved and matches brute force.
        let a = Solver::from_cnf(&cnf).solve();
        let b = Solver::from_cnf(&reparsed).solve();
        assert_eq!(a, b, "case {case}");
        assert_eq!(
            a == SolveResult::Sat,
            brute_force_sat(num_vars, &clauses),
            "case {case}"
        );
    });
}

/// Locking with the correct key is always functionally transparent, for
/// every scheme.
#[test]
fn correct_key_is_transparent() {
    check(105, 24, |case, rng| {
        let seed = rng.gen_range(0..200u64);
        let original = seeded_circuit(seed, 10, 80);
        let pattern = rng.gen_range(0..1024u64);
        let bits = pattern_to_bits(pattern, 10);
        let want = original.evaluate(&bits, &[]);

        let sfll = SfllHd::new(6, 1).with_seed(seed).lock(&original).unwrap();
        assert_eq!(
            sfll.locked.evaluate(&bits, sfll.key.bits()),
            want,
            "case {case} sfll"
        );

        let tt = TtLock::new(6).with_seed(seed).lock(&original).unwrap();
        assert_eq!(
            tt.locked.evaluate(&bits, tt.key.bits()),
            want,
            "case {case} ttlock"
        );

        let xor = XorLock::new(6).with_seed(seed).lock(&original).unwrap();
        assert_eq!(
            xor.locked.evaluate(&bits, xor.key.bits()),
            want,
            "case {case} xor"
        );
    });
}

/// SFLL-HDh corrupts a wrong key on at most `2 * C(m, h)` input patterns of
/// the protected-input subspace — the low-corruption property that makes it
/// SAT-attack resilient.
#[test]
fn sfll_wrong_key_corruption_is_bounded() {
    check(106, 16, |case, rng| {
        let seed = rng.gen_range(0..100u64);
        let original = seeded_circuit(seed, 8, 60);
        let m = 8usize;
        let h = 1usize;
        let locked = SfllHd::new(m, h).with_seed(seed).lock(&original).unwrap();
        let wrong = Key::from_pattern(seed ^ 0x55, m);
        if wrong == locked.key {
            return;
        }
        let corrupted = (0..256u64)
            .filter(|&p| {
                let bits = pattern_to_bits(p, 8);
                locked.locked.evaluate(&bits, wrong.bits()) != original.evaluate(&bits, &[])
            })
            .count();
        // C(8, 1) = 8 patterns per cube, two cubes involved at most.
        assert!(
            corrupted <= 16,
            "case {case}: corrupted {corrupted} patterns"
        );
    });
}

/// Whatever key the FALL attack shortlists must be functionally correct —
/// never a false positive once the equivalence check is on.
#[test]
fn fall_shortlist_contains_no_false_positives() {
    check(107, 8, |case, rng| {
        let seed = rng.gen_range(0..24u64);
        let original = seeded_circuit(seed, 12, 100);
        let locked = SfllHd::new(8, 1)
            .with_seed(seed)
            .lock(&original)
            .unwrap()
            .optimized();
        let result = fall::attack::fall_attack(
            &locked.locked,
            None,
            &fall::attack::FallAttackConfig::for_h(1),
        );
        for key in &result.shortlisted_keys {
            assert!(
                locked.key_is_functionally_correct(key, 128, seed),
                "case {case}: shortlisted key {key} is not functionally correct"
            );
        }
    });
}

/// Gate-level rewriting (constant propagation + dead-logic removal) never
/// changes the circuit function and never grows the netlist.
#[test]
fn rewrite_simplify_preserves_function() {
    check(108, 24, |case, rng| {
        let circuit = seeded_circuit(rng.gen_range(0..500u64), 8, 50);
        let cleaned = netlist::rewrite::simplify(&circuit);
        assert!(cleaned.num_gates() <= circuit.num_gates(), "case {case}");
        let pattern = rng.gen_range(0..256u64);
        let bits = pattern_to_bits(pattern, 8);
        assert_eq!(
            circuit.evaluate(&bits, &[]),
            cleaned.evaluate(&bits, &[]),
            "case {case} pattern {pattern:08b}"
        );
    });
}

/// Applying the ground-truth key with `fall::unlock` always reproduces the
/// original circuit, for a random scheme choice.
#[test]
fn unlock_with_correct_key_recovers_original() {
    check(109, 12, |case, rng| {
        let seed = rng.gen_range(0..60u64);
        let original = seeded_circuit(seed, 9, 70);
        let locked = match rng.gen_range(0..3usize) {
            0 => TtLock::new(6).with_seed(seed).lock(&original).unwrap(),
            1 => SfllHd::new(6, 1).with_seed(seed).lock(&original).unwrap(),
            _ => XorLock::new(6).with_seed(seed).lock(&original).unwrap(),
        };
        let unlocked = fall::unlock::apply_key(&locked.locked, &locked.key);
        assert!(
            fall::unlock::equivalent_to(&unlocked, &original, 256, seed),
            "case {case} seed {seed}"
        );
    });
}

/// A `.bench` export/import round trip preserves the locked function.
#[test]
fn bench_round_trip_preserves_locked_function() {
    check(110, 12, |case, rng| {
        let seed = rng.gen_range(0..60u64);
        let original = seeded_circuit(seed, 9, 60);
        let locked = SfllHd::new(5, 1).with_seed(seed).lock(&original).unwrap();
        let text = netlist::bench_format::write(&locked.locked);
        let reparsed = netlist::bench_format::parse(&text).unwrap();
        let pattern = rng.gen_range(0..512u64);
        let bits = pattern_to_bits(pattern, 9);
        assert_eq!(
            locked.locked.evaluate(&bits, locked.key.bits()),
            reparsed.evaluate(&bits, locked.key.bits()),
            "case {case} seed {seed} pattern {pattern:09b}"
        );
    });
}

/// The gate-level Hamming-distance comparator agrees with a reference
/// popcount for arbitrary widths, cubes and distances.
#[test]
fn hamming_comparator_matches_reference() {
    check(111, 64, |case, rng| {
        let width = rng.gen_range(1..7usize);
        let h = rng.gen_range(0..4usize).min(width);
        let cube = rng.gen_range(0..64u64) & ((1 << width) - 1);
        let pattern = rng.gen_range(0..64u64) & ((1 << width) - 1);
        let mut nl = Netlist::new("hd_prop");
        let xs: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("x{i}"))).collect();
        let cube_bits = pattern_to_bits(cube, width);
        let out = netlist::hamming::hamming_distance_equals_const(&mut nl, &xs, &cube_bits, h);
        nl.add_output("hd", out);
        let got = nl.evaluate(&pattern_to_bits(pattern, width), &[])[0];
        let expected = (cube ^ pattern).count_ones() as usize == h;
        assert_eq!(
            got, expected,
            "case {case} width {width} cube {cube:b} h {h}"
        );
    });
}

/// XOR/XNOR chains in the netlist survive the AIG round trip.
#[test]
fn aig_round_trip_preserves_small_functions() {
    let gate_kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Xor,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xnor,
    ];
    check(112, 48, |case, rng| {
        let chain_len = rng.gen_range(1..6usize);
        let kinds: Vec<usize> = (0..chain_len).map(|_| rng.gen_range(0..6usize)).collect();
        let pattern = rng.gen_range(0..16u64);
        let mut nl = Netlist::new("aig_prop");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let mut last = a;
        let pool = [a, b, c, d];
        for (i, &k) in kinds.iter().enumerate() {
            let other = pool[i % pool.len()];
            last = nl.add_gate(format!("g{i}"), gate_kinds[k], &[last, other]);
        }
        nl.add_output("y", last);
        let optimized = strash(&nl);
        let bits = pattern_to_bits(pattern, 4);
        assert_eq!(
            nl.evaluate(&bits, &[]),
            optimized.evaluate(&bits, &[]),
            "case {case} kinds {kinds:?} pattern {pattern:04b}"
        );
    });
}
