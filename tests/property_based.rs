//! Property-based tests over the core invariants of the stack, using
//! proptest to generate random circuits, keys and cubes.

use locking::{Key, LockingScheme, SfllHd, TtLock, XorLock};
use netlist::random::{generate, RandomCircuitSpec};
use netlist::sim::pattern_to_bits;
use netlist::strash::strash;
use netlist::{GateKind, Netlist, NodeId};
use proptest::prelude::*;
use sat::{Lit, SolveResult, Solver, Var};

/// Builds a small random circuit from a proptest-chosen seed.
fn seeded_circuit(seed: u64, inputs: usize, gates: usize) -> Netlist {
    generate(&RandomCircuitSpec::new("prop", inputs, 2, gates).with_seed(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Structural hashing never changes the circuit function.
    #[test]
    fn strash_preserves_function(seed in 0u64..1_000, pattern in 0u64..256) {
        let circuit = seeded_circuit(seed, 8, 60);
        let optimized = strash(&circuit);
        let bits = pattern_to_bits(pattern, 8);
        prop_assert_eq!(circuit.evaluate(&bits, &[]), optimized.evaluate(&bits, &[]));
    }

    /// The Tseitin encoding agrees with direct simulation on every output.
    #[test]
    fn cnf_encoding_matches_simulation(seed in 0u64..500, pattern in 0u64..256) {
        let circuit = seeded_circuit(seed, 8, 40);
        let bits = pattern_to_bits(pattern, 8);
        let expected = circuit.evaluate(&bits, &[]);

        let mut solver = Solver::new();
        let enc = netlist::cnf::encode(&circuit, &mut solver, &netlist::cnf::PinBinding::default());
        for (lit, value) in enc.inputs.iter().zip(&bits) {
            solver.add_clause([if *value { *lit } else { !*lit }]);
        }
        prop_assert_eq!(solver.solve(), SolveResult::Sat);
        let got: Vec<bool> = enc.outputs.iter().map(|&l| solver.value(l).unwrap()).collect();
        prop_assert_eq!(got, expected);
    }

    /// The SAT solver agrees with brute force on small random formulas.
    #[test]
    fn solver_matches_brute_force(
        clauses in proptest::collection::vec(
            proptest::collection::vec((0usize..6, any::<bool>()), 1..4),
            1..12,
        )
    ) {
        let mut solver = Solver::new();
        solver.ensure_vars(6);
        for clause in &clauses {
            solver.add_clause(clause.iter().map(|&(v, neg)| Lit::new(Var::from_index(v), neg)));
        }
        let solver_says_sat = solver.solve() == SolveResult::Sat;

        let brute_force_sat = (0u64..64).any(|assignment| {
            clauses.iter().all(|clause| {
                clause.iter().any(|&(v, neg)| {
                    let value = (assignment >> v) & 1 == 1;
                    value != neg
                })
            })
        });
        prop_assert_eq!(solver_says_sat, brute_force_sat);

        // When satisfiable, the reported model must satisfy every clause.
        if solver_says_sat {
            for clause in &clauses {
                let clause_satisfied = clause
                    .iter()
                    .any(|&(v, neg)| solver.var_value(Var::from_index(v)) == Some(!neg));
                prop_assert!(clause_satisfied);
            }
        }
    }

    /// Locking with the correct key is always functionally transparent, for
    /// every scheme.
    #[test]
    fn correct_key_is_transparent(seed in 0u64..200, pattern in 0u64..1024) {
        let original = seeded_circuit(seed, 10, 80);
        let bits = pattern_to_bits(pattern, 10);
        let want = original.evaluate(&bits, &[]);

        let sfll = SfllHd::new(6, 1).with_seed(seed).lock(&original).unwrap();
        prop_assert_eq!(sfll.locked.evaluate(&bits, sfll.key.bits()), want.clone());

        let tt = TtLock::new(6).with_seed(seed).lock(&original).unwrap();
        prop_assert_eq!(tt.locked.evaluate(&bits, tt.key.bits()), want.clone());

        let xor = XorLock::new(6).with_seed(seed).lock(&original).unwrap();
        prop_assert_eq!(xor.locked.evaluate(&bits, xor.key.bits()), want);
    }

    /// SFLL-HDh corrupts a wrong key on at most `2 * C(m, h)` input patterns
    /// of the protected-input subspace — the low-corruption property that
    /// makes it SAT-attack resilient.
    #[test]
    fn sfll_wrong_key_corruption_is_bounded(seed in 0u64..100) {
        let original = seeded_circuit(seed, 8, 60);
        let m = 8usize;
        let h = 1usize;
        let locked = SfllHd::new(m, h).with_seed(seed).lock(&original).unwrap();
        let wrong = Key::from_pattern(seed ^ 0x55, m);
        prop_assume!(wrong != locked.key);
        let corrupted = (0..256u64)
            .filter(|&p| {
                let bits = pattern_to_bits(p, 8);
                locked.locked.evaluate(&bits, wrong.bits()) != original.evaluate(&bits, &[])
            })
            .count();
        // C(8, 1) = 8 patterns per cube, two cubes involved at most.
        prop_assert!(corrupted <= 16, "corrupted {} patterns", corrupted);
    }

    /// Key extraction from the locked circuit: whatever key the FALL attack
    /// shortlists must be functionally correct (never a false positive once
    /// the equivalence check is on).
    #[test]
    fn fall_shortlist_contains_no_false_positives(seed in 0u64..24) {
        let original = seeded_circuit(seed, 12, 100);
        let locked = SfllHd::new(8, 1).with_seed(seed).lock(&original).unwrap().optimized();
        let result = fall::attack::fall_attack(
            &locked.locked,
            None,
            &fall::attack::FallAttackConfig::for_h(1),
        );
        for key in &result.shortlisted_keys {
            prop_assert!(
                locked.key_is_functionally_correct(key, 128, seed),
                "shortlisted key {} is not functionally correct",
                key
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Gate-level rewriting (constant propagation + dead-logic removal) never
    /// changes the circuit function and never grows the netlist.
    #[test]
    fn rewrite_simplify_preserves_function(seed in 0u64..500, pattern in 0u64..256) {
        let circuit = seeded_circuit(seed, 8, 50);
        let cleaned = netlist::rewrite::simplify(&circuit);
        prop_assert!(cleaned.num_gates() <= circuit.num_gates());
        let bits = pattern_to_bits(pattern, 8);
        prop_assert_eq!(circuit.evaluate(&bits, &[]), cleaned.evaluate(&bits, &[]));
    }

    /// Applying the ground-truth key with `fall::unlock` always reproduces the
    /// original circuit, for a random scheme choice.
    #[test]
    fn unlock_with_correct_key_recovers_original(seed in 0u64..60, scheme_choice in 0usize..3) {
        let original = seeded_circuit(seed, 9, 70);
        let locked = match scheme_choice {
            0 => TtLock::new(6).with_seed(seed).lock(&original).unwrap(),
            1 => SfllHd::new(6, 1).with_seed(seed).lock(&original).unwrap(),
            _ => XorLock::new(6).with_seed(seed).lock(&original).unwrap(),
        };
        let unlocked = fall::unlock::apply_key(&locked.locked, &locked.key);
        prop_assert!(fall::unlock::equivalent_to(&unlocked, &original, 256, seed));
    }

    /// A `.bench` export/import round trip preserves the locked function.
    #[test]
    fn bench_round_trip_preserves_locked_function(seed in 0u64..60, pattern in 0u64..512) {
        let original = seeded_circuit(seed, 9, 60);
        let locked = SfllHd::new(5, 1).with_seed(seed).lock(&original).unwrap();
        let text = netlist::bench_format::write(&locked.locked);
        let reparsed = netlist::bench_format::parse(&text).unwrap();
        let bits = pattern_to_bits(pattern, 9);
        prop_assert_eq!(
            locked.locked.evaluate(&bits, locked.key.bits()),
            reparsed.evaluate(&bits, locked.key.bits())
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The gate-level Hamming-distance comparator agrees with a reference
    /// popcount for arbitrary widths, cubes and distances.
    #[test]
    fn hamming_comparator_matches_reference(
        width in 1usize..7,
        cube in 0u64..64,
        h in 0usize..4,
        pattern in 0u64..64,
    ) {
        prop_assume!(h <= width);
        let cube = cube & ((1 << width) - 1);
        let pattern = pattern & ((1 << width) - 1);
        let mut nl = Netlist::new("hd_prop");
        let xs: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("x{i}"))).collect();
        let cube_bits = pattern_to_bits(cube, width);
        let out = netlist::hamming::hamming_distance_equals_const(&mut nl, &xs, &cube_bits, h);
        nl.add_output("hd", out);
        let got = nl.evaluate(&pattern_to_bits(pattern, width), &[])[0];
        let expected = (cube ^ pattern).count_ones() as usize == h;
        prop_assert_eq!(got, expected);
    }

    /// XOR/XNOR chains in the netlist survive the AIG round trip.
    #[test]
    fn aig_round_trip_preserves_small_functions(
        kinds in proptest::collection::vec(0usize..6, 1..6),
        pattern in 0u64..16,
    ) {
        let gate_kinds = [
            GateKind::And,
            GateKind::Or,
            GateKind::Xor,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xnor,
        ];
        let mut nl = Netlist::new("aig_prop");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let mut last = a;
        let pool = [a, b, c, d];
        for (i, &k) in kinds.iter().enumerate() {
            let other = pool[i % pool.len()];
            last = nl.add_gate(format!("g{i}"), gate_kinds[k], &[last, other]);
        }
        nl.add_output("y", last);
        let optimized = strash(&nl);
        let bits = pattern_to_bits(pattern, 4);
        prop_assert_eq!(nl.evaluate(&bits, &[]), optimized.evaluate(&bits, &[]));
    }
}
