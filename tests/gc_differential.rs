//! Differential and regression suite for the `sat` clause arena: garbage
//! collection and variable recycling must be *invisible* to every solver
//! answer, and must actually bound the memory of a long-lived session.
//!
//! The differential half runs the attack stack in lockstep on two sessions
//! that differ only in [`sat::SolverConfig::gc_wasted_ratio`]: `0.0` (a GC
//! compaction at every conflict, every `simplify`, every `reduce_db` — the
//! most hostile relocation schedule possible) versus `f64::INFINITY` (GC
//! disabled, the pre-arena tombstone-forever behaviour).  Relocating clauses
//! never changes watch order, activities or phases, so the two sides must
//! agree on every solve *status* bit for bit; models are checked
//! semantically (ϕ-membership, consistency with observed I/O pairs,
//! functional correctness), mirroring `tests/session_reuse.rs`.
//!
//! The regression half drives ≥ 100 retired predicate generations through
//! one session and asserts that the variable count and the clause-arena
//! footprint go *flat* after warm-up — the bounded-memory guarantee that
//! lets a parallel worker serve unbounded key-space regions — and that a
//! poisoned (impossible-I/O) generation still un-poisons across forced GC.

use fall::key_confirmation::{key_confirmation_in, KeyConfirmationConfig};
use fall::oracle::{Oracle, SimOracle};
use fall::session::{AttackSession, KeyVector};
use locking::{LockedCircuit, LockingScheme, SfllHd, TtLock, XorLock};
use netlist::random::{generate, RandomCircuitSpec};
use netlist::GateKind;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sat::{Lit, SolveResult, Solver, SolverConfig, Var};

/// Safety cap on distinguishing-input iterations per case.
const MAX_ITERATIONS: usize = 400;

fn forced_gc() -> SolverConfig {
    SolverConfig {
        gc_wasted_ratio: 0.0,
        ..SolverConfig::default()
    }
}

fn disabled_gc() -> SolverConfig {
    SolverConfig {
        gc_wasted_ratio: f64::INFINITY,
        ..SolverConfig::default()
    }
}

/// Bounded variable elimination forced on, with a SatELite-style growth
/// allowance so the pass actually fires on small instances.
fn forced_elim() -> SolverConfig {
    SolverConfig {
        elim_vars: true,
        elim_grow: 4,
        ..SolverConfig::default()
    }
}

fn disabled_elim() -> SolverConfig {
    SolverConfig {
        elim_vars: false,
        ..SolverConfig::default()
    }
}

/// Runs `property` on `cases` pseudo-random cases seeded from `seed`
/// (consistent with `tests/session_reuse.rs`).
fn check<F: FnMut(usize, &mut ChaCha8Rng)>(seed: u64, cases: usize, mut property: F) {
    for case in 0..cases {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9));
        property(case, &mut rng);
    }
}

struct Case {
    locked: LockedCircuit,
    label: String,
}

fn random_case(rng: &mut ChaCha8Rng) -> Case {
    let seed = rng.gen_range(0..1000u64);
    let inputs = rng.gen_range(7..10usize);
    let gates = rng.gen_range(40..70usize);
    let original = generate(&RandomCircuitSpec::new("gc", inputs, 2, gates).with_seed(seed));
    let (locked, label) = match rng.gen_range(0..3usize) {
        0 => {
            let width = rng.gen_range(4..7usize);
            (
                XorLock::new(width).with_seed(seed).lock(&original),
                format!("xor{width} in{inputs} g{gates} seed {seed}"),
            )
        }
        1 => {
            let h = rng.gen_range(0..2usize);
            (
                SfllHd::new(5, h).with_seed(seed).lock(&original),
                format!("sfll5-hd{h} in{inputs} g{gates} seed {seed}"),
            )
        }
        _ => (
            TtLock::new(5).with_seed(seed).lock(&original),
            format!("tt5 in{inputs} g{gates} seed {seed}"),
        ),
    };
    Case {
        locked: locked.expect("lock"),
        label,
    }
}

fn consistent_with_observations(
    locked: &LockedCircuit,
    key: &locking::Key,
    observed: &[(Vec<bool>, Vec<bool>)],
) -> bool {
    observed
        .iter()
        .all(|(x, y)| &locked.locked.evaluate(x, key.bits()) == y)
}

/// The full SAT-attack flow (`find_dip`/`force_dip`/`extract_key`) in
/// lockstep: GC-forced-every-conflict and GC-disabled sessions must report
/// identical statuses at every step, for every random netlist and lock.
#[test]
fn forced_gc_dip_loop_matches_disabled_gc() {
    check(301, 6, |case_index, rng| {
        let case = random_case(rng);
        let oracle = SimOracle::new(case.locked.original.clone());
        let mut gc = AttackSession::with_config(&case.locked.locked, forced_gc());
        let mut nogc = AttackSession::with_config(&case.locked.locked, disabled_gc());
        let ctx = |detail: &str| format!("case {case_index} [{}]: {detail}", case.label);

        let mut observed: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
        loop {
            assert!(
                observed.len() < MAX_ITERATIONS,
                "{}",
                ctx("DIP loop did not converge within the iteration cap")
            );
            let gc_status = gc.find_dip();
            let nogc_status = nogc.find_dip();
            assert_eq!(
                gc_status,
                nogc_status,
                "{}",
                ctx(&format!(
                    "find_dip diverges at iteration {}",
                    observed.len()
                ))
            );
            match gc_status {
                SolveResult::Unsat => break,
                SolveResult::Unknown => panic!("{}", ctx("unexpected Unknown (no budget set)")),
                SolveResult::Sat => {}
            }
            // Feed the forced-GC session's distinguishing input to both sides.
            let x = gc.dip_inputs();
            let y = oracle.query(&x);
            observed.push((x.clone(), y.clone()));
            gc.force_dip(&x, &y);
            nogc.force_dip(&x, &y);
        }

        let (gc_status, gc_key) = gc.extract_key();
        let (nogc_status, nogc_key) = nogc.extract_key();
        assert_eq!(gc_status, nogc_status, "{}", ctx("extract_key diverges"));
        if gc_status == SolveResult::Sat {
            for (who, key) in [
                ("gc", gc_key.expect("sat carries a key")),
                ("nogc", nogc_key.expect("sat carries a key")),
            ] {
                assert!(
                    consistent_with_observations(&case.locked, &key, &observed),
                    "{}",
                    ctx(&format!("{who} key {key} contradicts an observation"))
                );
                assert!(
                    case.locked
                        .key_is_functionally_correct(&key, 128, case_index as u64),
                    "{}",
                    ctx(&format!("{who} key {key} is not functionally correct"))
                );
            }
        }
        assert!(
            gc.stats().gc_runs > 0,
            "{}",
            ctx("the forced side must actually have collected")
        );
        assert_eq!(
            nogc.stats().gc_runs,
            0,
            "{}",
            ctx("the disabled side must never collect")
        );
    });
}

/// Whole key-confirmation runs (generations opened, solved and retired) in
/// lockstep across GC modes: identical confirm/reject verdicts, recycled
/// variables on both sides.
#[test]
fn forced_gc_confirmation_runs_match_disabled_gc() {
    check(302, 4, |case_index, rng| {
        let case = random_case(rng);
        let oracle = SimOracle::new(case.locked.original.clone());
        let config = KeyConfirmationConfig::default();
        let mut gc = AttackSession::with_config(&case.locked.locked, forced_gc());
        let mut nogc = AttackSession::with_config(&case.locked.locked, disabled_gc());

        for round in 0..4 {
            let shortlist = if round % 2 == 0 {
                vec![case.locked.key.clone(), case.locked.key.complement()]
            } else {
                vec![case.locked.key.complement()]
            };
            let gc_result = key_confirmation_in(&mut gc, &oracle, &shortlist, &config);
            let nogc_result = key_confirmation_in(&mut nogc, &oracle, &shortlist, &config);
            let ctx = format!("case {case_index} round {round} [{}]", case.label);
            assert!(gc_result.completed && nogc_result.completed, "{ctx}");
            assert_eq!(
                gc_result.key.is_some(),
                nogc_result.key.is_some(),
                "{ctx}: confirm/reject verdicts diverge"
            );
            if let Some(key) = &gc_result.key {
                assert!(
                    case.locked
                        .key_is_functionally_correct(key, 128, case_index as u64),
                    "{ctx}: confirmed key {key} is wrong"
                );
            }
        }
        for (who, session) in [("gc", &gc), ("nogc", &nogc)] {
            assert!(
                session.stats().recycled_vars > 0,
                "case {case_index} [{}]: {who} side recycles generation variables",
                case.label
            );
        }
    });
}

/// ≥ 100 retired predicate generations on one session keep the variable
/// count and the clause arena flat after warm-up — the bounded-memory
/// regression of the flat-arena/variable-recycling work.
#[test]
fn hundred_generations_keep_vars_and_arena_bounded() {
    let original = generate(&RandomCircuitSpec::new("gc_bound", 8, 2, 50));
    let locked = SfllHd::new(5, 0)
        .with_seed(2)
        .lock(&original)
        .expect("lock");
    let oracle = SimOracle::new(original);
    let config = KeyConfirmationConfig::default();
    let mut session = AttackSession::new(&locked.locked);

    const WARMUP: usize = 10;
    const GENERATIONS: usize = 100;
    let mut warm_vars = 0usize;
    let mut warm_arena = 0u64;
    for generation in 0..GENERATIONS {
        // Alternate confirming and rejecting shortlists so both query shapes
        // (and both amounts of per-generation encoding) recur.
        let shortlist = if generation % 2 == 0 {
            vec![locked.key.clone(), locked.key.complement()]
        } else {
            vec![locked.key.complement()]
        };
        let result = key_confirmation_in(&mut session, &oracle, &shortlist, &config);
        assert!(result.completed, "generation {generation}");
        assert_eq!(
            result.key.is_some(),
            generation % 2 == 0,
            "generation {generation}"
        );
        if generation + 1 == WARMUP {
            warm_vars = session.num_vars();
            warm_arena = session.stats().arena_bytes;
        }
    }

    let stats = session.stats();
    assert_eq!(
        session.num_vars(),
        warm_vars,
        "the variable space is flat after warm-up: generation N + 1 reuses \
         the recycled variables of generation N"
    );
    assert!(
        stats.arena_bytes <= warm_arena.saturating_mul(2),
        "the clause arena stays bounded: {warm_arena} bytes after warm-up, \
         {} after {GENERATIONS} generations",
        stats.arena_bytes
    );
    assert!(
        stats.gc_runs > 0,
        "a hundred retirements must trigger arena compaction"
    );
    assert!(
        stats.recycled_vars as usize >= GENERATIONS,
        "every retired generation recycles variables (got {})",
        stats.recycled_vars
    );
}

/// The full SAT-attack flow in lockstep across *elimination* modes: bounded
/// variable elimination at every `simplify` checkpoint versus elimination
/// disabled.  Substituting a variable out (and reconstructing it in
/// `extend_model`) must be invisible to every solve status, and the keys the
/// eliminating side extracts must be semantically indistinguishable from the
/// non-eliminating side's.
#[test]
fn forced_elimination_dip_loop_matches_disabled_elimination() {
    let mut total_eliminated = 0u64;
    check(303, 6, |case_index, rng| {
        let case = random_case(rng);
        let oracle = SimOracle::new(case.locked.original.clone());
        let mut elim = AttackSession::with_config(&case.locked.locked, forced_elim());
        let mut noelim = AttackSession::with_config(&case.locked.locked, disabled_elim());
        let ctx = |detail: &str| format!("case {case_index} [{}]: {detail}", case.label);

        let mut observed: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
        loop {
            assert!(
                observed.len() < MAX_ITERATIONS,
                "{}",
                ctx("DIP loop did not converge within the iteration cap")
            );
            let elim_status = elim.find_dip();
            let noelim_status = noelim.find_dip();
            assert_eq!(
                elim_status,
                noelim_status,
                "{}",
                ctx(&format!(
                    "find_dip diverges at iteration {}",
                    observed.len()
                ))
            );
            match elim_status {
                SolveResult::Unsat => break,
                SolveResult::Unknown => panic!("{}", ctx("unexpected Unknown (no budget set)")),
                SolveResult::Sat => {}
            }
            // Feed the eliminating session's distinguishing input to both
            // sides, then force an explicit simplify checkpoint so the
            // eliminator runs every iteration, not only when the session's
            // clause-growth heuristic fires.
            let x = elim.dip_inputs();
            let y = oracle.query(&x);
            observed.push((x.clone(), y.clone()));
            elim.force_dip(&x, &y);
            noelim.force_dip(&x, &y);
            elim.solver_mut().simplify();
            noelim.solver_mut().simplify();
        }

        let (elim_status, elim_key) = elim.extract_key();
        let (noelim_status, noelim_key) = noelim.extract_key();
        assert_eq!(
            elim_status,
            noelim_status,
            "{}",
            ctx("extract_key diverges")
        );
        if elim_status == SolveResult::Sat {
            for (who, key) in [
                ("elim", elim_key.expect("sat carries a key")),
                ("noelim", noelim_key.expect("sat carries a key")),
            ] {
                assert!(
                    consistent_with_observations(&case.locked, &key, &observed),
                    "{}",
                    ctx(&format!("{who} key {key} contradicts an observation"))
                );
                assert!(
                    case.locked
                        .key_is_functionally_correct(&key, 128, case_index as u64),
                    "{}",
                    ctx(&format!("{who} key {key} is not functionally correct"))
                );
            }
        }
        total_eliminated += elim.stats().vars_eliminated;
        assert_eq!(
            noelim.stats().vars_eliminated,
            0,
            "{}",
            ctx("the disabled side must never eliminate")
        );
    });
    assert!(
        total_eliminated > 0,
        "the eliminating side must substitute out at least one internal \
         cone variable across the suite"
    );
}

/// Property: after bounded variable elimination, a SAT answer's
/// *reconstructed* model (eliminated variables re-derived by the reverse
/// `extend_model` walk) satisfies every clause of the **original** formula —
/// not merely the post-elimination one — on random CNF instances, with a
/// random subset of variables frozen as an interface.
#[test]
fn reconstructed_models_satisfy_the_original_clauses() {
    let mut total_eliminated = 0u64;
    check(304, 40, |round, rng| {
        let num_vars = rng.gen_range(6..16usize);
        let num_clauses = rng.gen_range(8..36usize);
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for _ in 0..num_clauses {
            let len = rng.gen_range(1..4usize);
            let clause: Vec<Lit> = (0..len)
                .map(|_| Lit::new(Var::from_index(rng.gen_range(0..num_vars)), rng.gen()))
                .collect();
            clauses.push(clause);
        }
        let frozen: Vec<Var> = (0..num_vars)
            .map(Var::from_index)
            .filter(|_| rng.gen_bool(0.25))
            .collect();

        let build = |config: SolverConfig| {
            let mut solver = Solver::with_config(config);
            solver.ensure_vars(num_vars);
            for var in &frozen {
                solver.set_frozen(*var, true);
            }
            for clause in &clauses {
                solver.add_clause(clause.iter().copied());
            }
            solver
        };
        let mut elim = build(forced_elim());
        let mut noelim = build(disabled_elim());
        elim.simplify();
        noelim.simplify();

        let elim_status = elim.solve();
        let noelim_status = noelim.solve();
        assert_eq!(
            elim_status, noelim_status,
            "round {round}: statuses diverge"
        );
        if elim_status == SolveResult::Sat {
            for clause in &clauses {
                assert!(
                    clause.iter().any(|&lit| elim.value(lit) == Some(true)),
                    "round {round}: reconstructed model violates original \
                     clause {clause:?}"
                );
            }
            // Frozen interface variables keep first-class model values.
            for var in &frozen {
                assert!(
                    !elim.is_eliminated(*var),
                    "round {round}: frozen {var:?} was eliminated"
                );
            }
        }
        total_eliminated += elim.stats().vars_eliminated;
    });
    assert!(
        total_eliminated > 0,
        "the property is vacuous unless elimination actually fired"
    );
}

/// A poisoned generation (an I/O pair no key can reproduce) must un-poison
/// on retirement even when every conflict forces an arena compaction — GC
/// must never resurrect or lose the frame-scoped empty clause.
#[test]
fn unpoisoning_survives_forced_gc() {
    let mut nl = netlist::Netlist::new("gc_poison");
    let a = nl.add_input("a");
    let k = nl.add_key_input("k");
    let g = nl.add_gate("g", GateKind::Buf, &[a]);
    let keyed = nl.add_gate("keyed", GateKind::Xor, &[a, k]);
    nl.add_output("g", g);
    nl.add_output("keyed", keyed);

    let mut session = AttackSession::with_config(&nl, forced_gc());
    for round in 0..3 {
        let _phi = session.begin_predicate();
        // Output "g" ignores the key; claiming g(0) == 1 is impossible.
        session.constrain_key_with_io(KeyVector::Predicate, &[false], &[true, false]);
        let (result, key) = session.candidate_key();
        assert_eq!(result, SolveResult::Unsat, "round {round}: poisoned is ⊥");
        assert!(key.is_none());
        session.retire_predicate();

        let _phi = session.begin_predicate();
        session.constrain_key_with_io(KeyVector::Predicate, &[false], &[false, true]);
        let (result, key) = session.candidate_key();
        assert_eq!(result, SolveResult::Sat, "round {round}: session recovers");
        assert_eq!(
            key.expect("sat carries a key").bits(),
            &[true],
            "round {round}: keyed(0) == 1 forces k == 1"
        );
        session.retire_predicate();
    }
    assert_eq!(session.find_dip(), SolveResult::Sat);
}
