//! Behaviour of the attacks on the *other* locking schemes (SARLock,
//! Anti-SAT, random XOR locking): the FALL pipeline targets cube-stripping
//! schemes, so the important guarantees here are soundness ones — it must
//! never confirm an incorrect key, and the unlock step must only succeed with
//! functionally correct keys.

use fall::attack::{fall_attack, FallAttackConfig};
use fall::oracle::SimOracle;
use fall::sat_attack::{sat_attack, SatAttackConfig};
use fall::unlock::{apply_key, equivalent_to};
use locking::{AntiSat, LockingScheme, SarLock, XorLock};
use netlist::random::{generate, RandomCircuitSpec};

#[test]
fn fall_never_confirms_a_wrong_key_on_sarlock() {
    let original = generate(&RandomCircuitSpec::new("base_sar", 14, 3, 110));
    let locked = SarLock::new(10)
        .with_seed(4)
        .lock(&original)
        .expect("lock")
        .optimized();
    let oracle = SimOracle::new(original.clone());
    let result = fall_attack(&locked.locked, Some(&oracle), &FallAttackConfig::for_h(0));
    if let Some(confirmed) = &result.confirmed_key {
        assert!(
            locked.key_is_functionally_correct(confirmed, 512, 1),
            "a confirmed key must always be functionally correct"
        );
    }
    // Shortlisted-but-unconfirmed keys may be spurious for non-SFLL schemes;
    // that is exactly the case key confirmation exists for, so no assertion on
    // them here.
}

#[test]
fn fall_never_confirms_a_wrong_key_on_antisat() {
    let original = generate(&RandomCircuitSpec::new("base_as", 14, 3, 110));
    let locked = AntiSat::new(6)
        .with_seed(9)
        .lock(&original)
        .expect("lock")
        .optimized();
    let oracle = SimOracle::new(original.clone());
    let result = fall_attack(&locked.locked, Some(&oracle), &FallAttackConfig::for_h(0));
    if let Some(confirmed) = &result.confirmed_key {
        assert!(locked.key_is_functionally_correct(confirmed, 512, 2));
    }
}

#[test]
fn sat_attack_key_unlocks_sarlock_and_antisat() {
    // SARLock / Anti-SAT have tiny key-class counts at these widths, so the
    // SAT attack finishes; its key must unlock the circuit exactly.
    let original = generate(&RandomCircuitSpec::new("base_unlock", 12, 3, 90));
    let oracle = SimOracle::new(original.clone());

    let sarlock = SarLock::new(6)
        .with_seed(2)
        .lock(&original)
        .expect("lock")
        .optimized();
    let result = sat_attack(&sarlock.locked, &oracle, &SatAttackConfig::default());
    let key = result.key.expect("SAT attack finishes on small SARLock");
    let unlocked = apply_key(&sarlock.locked, &key);
    assert!(equivalent_to(&unlocked, &original, 2048, 3));

    let antisat = AntiSat::new(5)
        .with_seed(2)
        .lock(&original)
        .expect("lock")
        .optimized();
    let result = sat_attack(&antisat.locked, &oracle, &SatAttackConfig::default());
    let key = result.key.expect("SAT attack finishes on small Anti-SAT");
    let unlocked = apply_key(&antisat.locked, &key);
    assert!(equivalent_to(&unlocked, &original, 2048, 4));
}

#[test]
fn xor_locking_recovered_key_need_not_match_but_must_unlock() {
    // With XOR key gates several keys can be functionally equivalent; the SAT
    // attack may return any of them.  What matters is the unlocked function.
    let original = generate(&RandomCircuitSpec::new("base_xor", 12, 3, 90));
    let locked = XorLock::new(10)
        .with_seed(6)
        .lock(&original)
        .expect("lock")
        .optimized();
    let oracle = SimOracle::new(original.clone());
    let result = sat_attack(&locked.locked, &oracle, &SatAttackConfig::default());
    assert!(result.is_success());
    let unlocked = apply_key(&locked.locked, &result.key.expect("key"));
    assert!(equivalent_to(&unlocked, &original, 2048, 5));
}

#[test]
fn corruption_ordering_matches_the_resilience_story() {
    // SAT-resilient schemes achieve resilience by corrupting almost nothing
    // under wrong keys; XOR locking corrupts heavily.  This ordering is the
    // root cause of the Figure 5 behaviour.
    let original = generate(&RandomCircuitSpec::new("base_corr", 12, 3, 90));
    let sfll = locking::SfllHd::new(10, 1)
        .with_seed(1)
        .lock(&original)
        .expect("lock");
    let sarlock = SarLock::new(10).with_seed(1).lock(&original).expect("lock");
    let xor = XorLock::new(10).with_seed(1).lock(&original).expect("lock");

    let corruption = |locked: &locking::LockedCircuit| {
        locking::corruption::average_wrong_key_corruption(locked, 4, 256, 99)
    };
    let sfll_corruption = corruption(&sfll);
    let sarlock_corruption = corruption(&sarlock);
    let xor_corruption = corruption(&xor);
    assert!(sfll_corruption < xor_corruption);
    assert!(sarlock_corruption < xor_corruption);
    assert!(
        xor_corruption > 0.05,
        "xor locking corruption {xor_corruption}"
    );
}
