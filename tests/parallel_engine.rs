//! Cross-crate differential tests for the parallel attack engine:
//! `fall::parallel` versus the serial reference implementations.

use fall::key_confirmation::{partitioned_key_search, KeyConfirmationConfig};
use fall::oracle::{CountingOracle, SimOracle};
use fall::parallel::{parallel_partitioned_key_search, portfolio_sat_attack, CachingOracle};
use fall::sat_attack::{sat_attack, SatAttackConfig};
use fall::unlock::{apply_key, equivalent_to};
use locking::{LockingScheme, SfllHd, XorLock};
use netlist::random::{generate, RandomCircuitSpec};
use sat::SolverConfig;

const PARTITION_BITS: usize = 2;

/// The parallel search must return a key functionally equivalent to the
/// serial search's for every worker count, verified with the existing
/// equivalence checker on the unlocked netlists.
#[test]
fn parallel_search_key_is_equivalent_to_serial_for_1_to_4_workers() {
    let original = generate(&RandomCircuitSpec::new("pe_diff", 9, 3, 60));
    let locked = SfllHd::new(6, 0)
        .with_seed(11)
        .lock(&original)
        .expect("lock")
        .optimized();
    let oracle = SimOracle::new(original.clone());
    let config = KeyConfirmationConfig::default();

    let serial = partitioned_key_search(&locked.locked, &oracle, PARTITION_BITS, &config);
    assert!(serial.completed, "serial search must finish");
    let serial_key = serial.key.expect("serial search recovers a key");
    let serial_unlocked = apply_key(&locked.locked, &serial_key);
    assert!(equivalent_to(&serial_unlocked, &original, 512, 3));

    for workers in 1..=4 {
        let parallel = parallel_partitioned_key_search(
            &locked.locked,
            &oracle,
            PARTITION_BITS,
            workers,
            &config,
        );
        assert!(parallel.completed, "{workers} workers must finish");
        let key = parallel.key.expect("parallel search recovers a key");
        let unlocked = apply_key(&locked.locked, &key);
        assert!(
            equivalent_to(&unlocked, &serial_unlocked, 512, 3),
            "{workers}-worker key must unlock to the same function as serial"
        );
        assert!(
            equivalent_to(&unlocked, &original, 512, 3),
            "{workers}-worker key must unlock to the original"
        );
    }
}

/// Oracle-access discipline: on a search that visits every region (the
/// correct key sits in the last region of the serial order), the parallel
/// engine's *unique* oracle queries must never exceed the serial count plus
/// one in-flight region's worth of slack per worker — in practice the shared
/// cache keeps it strictly below the serial count.
#[test]
fn parallel_search_does_not_exceed_serial_oracle_queries() {
    // Find a seed whose correct key lies in the last region (low bits all
    // ones), so the serial search visits every region and its query count is
    // the worst case the parallel run can be compared against.
    let original = generate(&RandomCircuitSpec::new("pe_queries", 9, 2, 60));
    let locked = (0..64u64)
        .map(|seed| {
            SfllHd::new(6, 0)
                .with_seed(seed)
                .lock(&original)
                .expect("lock")
                .optimized()
        })
        .find(|locked| locked.key.bits()[..PARTITION_BITS].iter().all(|&bit| bit))
        .expect("some seed puts the key in the last region");
    let sim = SimOracle::new(original);
    let config = KeyConfirmationConfig::default();

    let counting = CountingOracle::new(sim.clone());
    let serial = partitioned_key_search(&locked.locked, &counting, PARTITION_BITS, &config);
    assert!(serial.completed && serial.key.is_some());
    let serial_queries = counting.queries();
    assert_eq!(serial_queries, serial.oracle_queries);

    for workers in 1..=4 {
        let parallel =
            parallel_partitioned_key_search(&locked.locked, &sim, PARTITION_BITS, workers, &config);
        assert!(parallel.completed && parallel.key.is_some());
        assert!(
            parallel.oracle_queries <= serial_queries + workers,
            "{workers} workers: {} unique queries > serial {} + {}",
            parallel.oracle_queries,
            serial_queries,
            workers
        );
    }
}

/// The shared cache answers repeated queries without touching the real
/// oracle, across threads.
#[test]
fn caching_oracle_bounds_real_oracle_traffic() {
    let original = generate(&RandomCircuitSpec::new("pe_cache", 8, 2, 50));
    let locked = SfllHd::new(5, 0)
        .with_seed(2)
        .lock(&original)
        .expect("lock")
        .optimized();
    let counting = CountingOracle::new(SimOracle::new(original));
    let cache = CachingOracle::new(&counting);
    let parallel = parallel_partitioned_key_search(
        &locked.locked,
        &cache,
        PARTITION_BITS,
        3,
        &KeyConfirmationConfig::default(),
    );
    assert!(parallel.completed && parallel.key.is_some());
    // The engine wraps the oracle in its own cache; stacking another cache on
    // top must still keep real traffic equal to the inner unique count.
    assert_eq!(counting.queries(), cache.unique_queries());
}

/// Frame-scoped predicates end to end: workers keep one long-lived session
/// across regions, and the result must match the per-region-session baseline
/// (the serial search builds a fresh session per region) — identical keys
/// for 1..=4 workers, the oracle-access discipline intact, and exactly one
/// session plus one full circuit encoding per *worker*, not per region.
#[test]
fn long_lived_worker_sessions_match_per_region_baseline() {
    // 3 partition bits → 8 regions, so every worker count stays below the
    // region count and the sessions-per-worker claim is meaningful.  The
    // seed is chosen so the correct key sits in the *last* region: every
    // region is searched, which makes the serial query count the worst case
    // the oracle-access discipline is measured against (same construction as
    // `parallel_search_does_not_exceed_serial_oracle_queries`).
    let partition_bits = 3;
    let num_regions = 1usize << partition_bits;
    let original = generate(&RandomCircuitSpec::new("pe_frames", 9, 2, 60));
    let locked = (0..64u64)
        .map(|seed| {
            SfllHd::new(6, 0)
                .with_seed(seed)
                .lock(&original)
                .expect("lock")
                .optimized()
        })
        .find(|locked| locked.key.bits()[..partition_bits].iter().all(|&bit| bit))
        .expect("some seed puts the key in the last region");
    let oracle = SimOracle::new(original.clone());
    let config = KeyConfirmationConfig::default();

    let serial = partitioned_key_search(&locked.locked, &oracle, partition_bits, &config);
    assert!(serial.completed, "per-region baseline must finish");
    let serial_key = serial.key.expect("baseline recovers a key");
    let serial_unlocked = apply_key(&locked.locked, &serial_key);
    assert!(equivalent_to(&serial_unlocked, &original, 512, 7));

    for workers in 1..=4 {
        let parallel = parallel_partitioned_key_search(
            &locked.locked,
            &oracle,
            partition_bits,
            workers,
            &config,
        );
        assert!(parallel.completed, "{workers} workers must finish");
        let key = parallel.key.expect("long-lived sessions recover a key");
        let unlocked = apply_key(&locked.locked, &key);
        assert!(
            equivalent_to(&unlocked, &serial_unlocked, 512, 7),
            "{workers}-worker key must unlock to the same function as the \
             per-region baseline"
        );
        assert!(
            parallel.oracle_queries <= serial.oracle_queries + workers,
            "{workers} workers: {} unique queries > per-region baseline {} + {workers}",
            parallel.oracle_queries,
            serial.oracle_queries,
        );
        assert_eq!(
            parallel.sessions_created, workers,
            "sessions are per worker, not per region"
        );
        assert!(
            parallel.sessions_created < num_regions,
            "{workers} workers must not build one session per region"
        );
        assert_eq!(
            parallel.cone_encodings_built, workers,
            "each worker encodes the circuit exactly once for all its regions"
        );
    }
}

/// The portfolio recovers a key functionally equivalent to the single-config
/// SAT attack's.
#[test]
fn portfolio_and_single_sat_attack_agree() {
    let original = generate(&RandomCircuitSpec::new("pe_pf", 10, 3, 80));
    let locked = XorLock::new(8).with_seed(4).lock(&original).expect("lock");
    let oracle = SimOracle::new(original.clone());

    let single = sat_attack(&locked.locked, &oracle, &SatAttackConfig::default());
    assert!(single.is_success());
    let portfolio = portfolio_sat_attack(
        &locked.locked,
        &oracle,
        &SolverConfig::portfolio(3),
        &SatAttackConfig::default(),
    );
    assert!(portfolio.result.is_success());

    let single_unlocked = apply_key(&locked.locked, &single.key.expect("key"));
    let portfolio_unlocked = apply_key(&locked.locked, &portfolio.result.key.expect("key"));
    assert!(equivalent_to(&single_unlocked, &original, 512, 9));
    assert!(equivalent_to(&portfolio_unlocked, &original, 512, 9));
}
