//! A scheme × transformation matrix: every locking scheme must stay correct
//! under the correct key through structural hashing, gate-level rewriting and
//! a `.bench` export/import round trip — the transformations a locked design
//! undergoes between the design house and the foundry.

use locking::{AntiSat, LockedCircuit, LockingScheme, SarLock, SfllHd, TtLock, XorLock};
use netlist::random::{generate, RandomCircuitSpec};
use netlist::rewrite::simplify;
use netlist::sim::pattern_to_bits;
use netlist::strash::strash;
use netlist::Netlist;

fn schemes() -> Vec<Box<dyn LockingScheme>> {
    vec![
        Box::new(TtLock::new(8).with_seed(1)),
        Box::new(SfllHd::new(8, 1).with_seed(1)),
        Box::new(SfllHd::new(8, 2).with_seed(2)),
        Box::new(SarLock::new(8).with_seed(1)),
        Box::new(AntiSat::new(4).with_seed(1)),
        Box::new(XorLock::new(8).with_seed(1)),
    ]
}

fn original() -> Netlist {
    generate(&RandomCircuitSpec::new("matrix", 10, 3, 80))
}

fn agrees_with_original(locked: &LockedCircuit, transformed: &Netlist) -> bool {
    (0..1024u64).all(|pattern| {
        let bits = pattern_to_bits(pattern, 10);
        transformed.evaluate(&bits, locked.key.bits()) == locked.original.evaluate(&bits, &[])
    })
}

#[test]
fn every_scheme_is_transparent_under_the_correct_key() {
    let original = original();
    for scheme in schemes() {
        let locked = scheme.lock(&original).expect("lock");
        assert!(
            agrees_with_original(&locked, &locked.locked),
            "{} is not transparent under its correct key",
            scheme.name()
        );
    }
}

#[test]
fn strash_preserves_every_scheme() {
    let original = original();
    for scheme in schemes() {
        let locked = scheme.lock(&original).expect("lock");
        let optimized = strash(&locked.locked);
        assert!(
            agrees_with_original(&locked, &optimized),
            "strash broke {}",
            scheme.name()
        );
    }
}

#[test]
fn rewrite_simplify_preserves_every_scheme() {
    let original = original();
    for scheme in schemes() {
        let locked = scheme.lock(&original).expect("lock");
        let cleaned = simplify(&locked.locked);
        assert!(cleaned.num_gates() <= locked.locked.num_gates());
        assert!(
            agrees_with_original(&locked, &cleaned),
            "rewrite::simplify broke {}",
            scheme.name()
        );
    }
}

#[test]
fn bench_round_trip_preserves_every_scheme() {
    let original = original();
    for scheme in schemes() {
        let locked = scheme.lock(&original).expect("lock");
        let text = netlist::bench_format::write(&locked.locked);
        let reparsed = netlist::bench_format::parse(&text).expect("parse");
        assert_eq!(
            reparsed.num_key_inputs(),
            locked.locked.num_key_inputs(),
            "{}: key inputs lost in .bench round trip",
            scheme.name()
        );
        assert!(
            agrees_with_original(&locked, &reparsed),
            ".bench round trip broke {}",
            scheme.name()
        );
    }
}

#[test]
fn key_width_and_metadata_are_consistent_across_schemes() {
    let original = original();
    for scheme in schemes() {
        let locked = scheme.lock(&original).expect("lock");
        assert_eq!(locked.key.len(), locked.locked.num_key_inputs());
        assert_eq!(locked.scheme, scheme.name());
        assert_eq!(locked.locked.num_inputs(), original.num_inputs());
        assert_eq!(locked.locked.num_outputs(), original.num_outputs());
        assert!(locked.locked.validate().is_ok());
    }
}
