//! Cross-crate integration tests: lock with `locking`, optimise with
//! `netlist`, attack with `fall`, and check the recovered keys against the
//! ground truth.

use fall::attack::{fall_attack, FallAttackConfig, FallStatus};
use fall::functional::Analysis;
use fall::key_confirmation::{key_confirmation, KeyConfirmationConfig};
use fall::oracle::SimOracle;
use fall::sat_attack::{sat_attack, SatAttackConfig};
use locking::{Key, LockingScheme, SfllHd, TtLock, XorLock};
use netlist::random::{generate, RandomCircuitSpec};
use netlist::Netlist;

fn bench_circuit(name: &str, inputs: usize, gates: usize) -> Netlist {
    generate(&RandomCircuitSpec::new(name, inputs, 4, gates))
}

#[test]
fn fall_breaks_ttlock_end_to_end() {
    let original = bench_circuit("e2e_tt", 18, 200);
    let locked = TtLock::new(12)
        .with_seed(101)
        .lock(&original)
        .expect("lock")
        .optimized();
    let result = fall_attack(&locked.locked, None, &FallAttackConfig::for_h(0));
    assert_eq!(result.status, FallStatus::UniqueKey, "{result:?}");
    assert_eq!(result.best_key(), Some(&locked.key));
    // The recovered key restores the original functionality exactly.
    assert!(locked.key_is_functionally_correct(result.best_key().unwrap(), 512, 1));
}

#[test]
fn fall_breaks_sfll_hd_for_every_figure5_policy() {
    let original = bench_circuit("e2e_sfll", 20, 240);
    let m = 12usize;
    for h in [0usize, m / 8, m / 4, m / 3] {
        let locked = SfllHd::new(m, h)
            .with_seed(7)
            .lock(&original)
            .expect("lock")
            .optimized();
        let result = fall_attack(&locked.locked, None, &FallAttackConfig::for_h(h));
        assert!(
            result.shortlisted_keys.contains(&locked.key),
            "h = {h}: {result:?}"
        );
    }
}

#[test]
fn every_functional_analysis_recovers_the_same_key_when_applicable() {
    let original = bench_circuit("e2e_analyses", 20, 220);
    let locked = SfllHd::new(12, 2)
        .with_seed(3)
        .lock(&original)
        .expect("lock")
        .optimized();
    for analysis in [Analysis::Distance2H, Analysis::SlidingWindow] {
        let mut config = FallAttackConfig::for_h(2);
        config.analyses = Some(vec![analysis]);
        let result = fall_attack(&locked.locked, None, &config);
        assert!(
            result.shortlisted_keys.contains(&locked.key),
            "{analysis:?} failed: {result:?}"
        );
    }
}

#[test]
fn sat_attack_and_fall_agree_on_xor_locking_vs_sfll() {
    let original = bench_circuit("e2e_xor", 16, 150);
    let oracle = SimOracle::new(original.clone());

    // XOR locking: SAT attack succeeds, FALL (a cube-stripping attack) does not.
    let xor_locked = XorLock::new(12)
        .with_seed(9)
        .lock(&original)
        .expect("lock")
        .optimized();
    let sat_result = sat_attack(&xor_locked.locked, &oracle, &SatAttackConfig::default());
    assert!(sat_result.is_success());
    assert!(xor_locked.key_is_functionally_correct(sat_result.key.as_ref().unwrap(), 256, 2));
    let fall_result = fall_attack(&xor_locked.locked, None, &FallAttackConfig::for_h(0));
    assert!(fall_result.shortlisted_keys.is_empty());

    // SFLL: FALL succeeds without an oracle.
    let sfll_locked = SfllHd::new(12, 1)
        .with_seed(9)
        .lock(&original)
        .expect("lock")
        .optimized();
    let fall_result = fall_attack(&sfll_locked.locked, None, &FallAttackConfig::for_h(1));
    assert!(fall_result.shortlisted_keys.contains(&sfll_locked.key));
}

#[test]
fn key_confirmation_rejects_wrong_shortlists_and_accepts_correct_ones() {
    let original = bench_circuit("e2e_kc", 16, 160);
    let locked = SfllHd::new(10, 1)
        .with_seed(5)
        .lock(&original)
        .expect("lock")
        .optimized();
    let oracle = SimOracle::new(original);

    let wrong_only = vec![locked.key.complement(), Key::zeros(10)];
    let result = key_confirmation(
        &locked.locked,
        &oracle,
        &wrong_only,
        &KeyConfirmationConfig::default(),
    );
    assert!(result.completed);
    assert_eq!(result.key, None);

    let with_correct = vec![locked.key.complement(), locked.key.clone()];
    let result = key_confirmation(
        &locked.locked,
        &oracle,
        &with_correct,
        &KeyConfirmationConfig::default(),
    );
    assert_eq!(result.key, Some(locked.key.clone()));
}

#[test]
fn attack_works_on_bench_format_round_trip() {
    // Lock, export to .bench, re-import, attack: mimics the real tool flow in
    // which the adversary reverse-engineers a netlist from masks.
    let original = bench_circuit("e2e_bench", 14, 120);
    let locked = TtLock::new(10)
        .with_seed(77)
        .lock(&original)
        .expect("lock")
        .optimized();
    let exported = netlist::bench_format::write(&locked.locked);
    let reparsed = netlist::bench_format::parse(&exported).expect("parse");
    assert_eq!(reparsed.num_key_inputs(), 10);
    let result = fall_attack(&reparsed, None, &FallAttackConfig::for_h(0));
    assert!(result.shortlisted_keys.contains(&locked.key), "{result:?}");
}

#[test]
fn strash_never_changes_locked_circuit_function() {
    let original = bench_circuit("e2e_strash", 12, 100);
    for h in [0usize, 1, 2] {
        let locked = SfllHd::new(8, h)
            .with_seed(h as u64)
            .lock(&original)
            .expect("lock");
        let optimized = locked.optimized();
        for pattern in 0..128u64 {
            let bits = netlist::sim::pattern_to_bits(pattern, 12);
            assert_eq!(
                locked.locked.evaluate(&bits, locked.key.bits()),
                optimized.locked.evaluate(&bits, locked.key.bits()),
            );
        }
    }
}
